package window

import (
	"sync"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/query"
)

// The result cache exploits immutability: a sealed epoch never
// changes, so a result computed for a CONCRETE window [from, to) stays
// correct forever — resolve canonicalizes every range (open-ended ones
// re-resolve to a new concrete window at each seal), which means the
// cache needs no invalidation on seal for closed windows and gets
// open-window invalidation for free through the changed key.
//
// The one event that can poison it is ring EVICTION: once an epoch
// falls out of the ring, a window reaching it must answer ErrEvicted
// (the uncached behavior), so serving the stale cached answer would
// diverge from cache-off. invalidateEvicted sweeps those entries and
// records the eviction floor; put re-checks the floor under the same
// mutex, closing the race where a slow reader resolved a span before
// the eviction and tries to cache its result after the sweep.

// op distinguishes the cached operation kinds.
type op uint8

const (
	// opQuery caches single partial-key subset sums (uint64).
	opQuery op = iota
	// opGroup caches GroupBy tables (map[flowkey.FiveTuple]uint64).
	opGroup
	// opRows caches the sorted row set Top and SQL slice from.
	opRows
)

// cacheKey identifies one cached result: operation, canonical window,
// grouping mask, and (for opQuery) the masked partial key.
type cacheKey struct {
	op       op
	from, to uint64
	mask     flowkey.Mask
	partial  flowkey.FiveTuple
}

// engineKey identifies one cached merged window engine.
type engineKey struct {
	from, to uint64
}

// cache is the bounded (partial key, window) result cache plus the
// merged-engine cache. A limit of 0 disables both. Safe for concurrent
// use.
type cache struct {
	mu      sync.Mutex
	limit   int
	results map[cacheKey]any
	engines map[engineKey]*query.Engine
	// evictedThrough mirrors the ring's eviction floor so put can
	// reject entries for windows that became unservable while the
	// caller was computing them.
	evictedThrough uint64
	evicted        bool
}

// newCache returns a cache bounded to limit entries per map (disabled
// when limit <= 0).
func newCache(limit int) *cache {
	if limit < 0 {
		limit = 0
	}
	return &cache{
		limit:   limit,
		results: make(map[cacheKey]any),
		engines: make(map[engineKey]*query.Engine),
	}
}

// setLimit rebounds the cache to n entries per map (0 disables) and
// clears current contents; the eviction floor survives so a disabled-
// then-reenabled cache still refuses unservable windows.
func (c *cache) setLimit(n int) {
	if n < 0 {
		n = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	c.results = make(map[cacheKey]any)
	c.engines = make(map[engineKey]*query.Engine)
}

// get returns the cached result for key, if present.
func (c *cache) get(key cacheKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.limit == 0 {
		return nil, false
	}
	v, ok := c.results[key]
	return v, ok
}

// put stores a result unless caching is disabled or the window has
// been evicted since the caller resolved it.
func (c *cache) put(key cacheKey, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.limit == 0 {
		return
	}
	if c.evicted && key.from <= c.evictedThrough {
		return
	}
	if len(c.results) >= c.limit {
		c.dropOneResult()
	}
	c.results[key] = v
}

// getEngine returns the cached merged engine for a concrete window.
func (c *cache) getEngine(from, to uint64) (*query.Engine, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.limit == 0 {
		return nil, false
	}
	eng, ok := c.engines[engineKey{from, to}]
	return eng, ok
}

// putEngine stores a merged engine under the same eviction guard as
// put.
func (c *cache) putEngine(from, to uint64, eng *query.Engine) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.limit == 0 {
		return
	}
	if c.evicted && from <= c.evictedThrough {
		return
	}
	if len(c.engines) >= c.limit {
		for k := range c.engines {
			delete(c.engines, k)
			break
		}
	}
	c.engines[engineKey{from, to}] = eng
}

// dropOneResult makes room by discarding an arbitrary entry (cache
// contents never affect answers, only speed, so any victim is
// correct). Caller holds c.mu.
func (c *cache) dropOneResult() {
	for k := range c.results {
		delete(c.results, k)
		return
	}
}

// invalidateEvicted removes every entry whose window starts at or
// below the new eviction floor and raises the floor. Idempotent:
// re-running with the same (or a lower) floor finds nothing left to
// remove. Returns the number of entries dropped.
func (c *cache) invalidateEvicted(through uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.evicted || through > c.evictedThrough {
		c.evictedThrough, c.evicted = through, true
	}
	var dropped uint64
	for k := range c.results {
		if k.from <= c.evictedThrough {
			delete(c.results, k)
			dropped++
		}
	}
	for k := range c.engines {
		if k.from <= c.evictedThrough {
			delete(c.engines, k)
			dropped++
		}
	}
	return dropped
}

// Len reports the current number of cached results and engines (test
// hook).
func (c *cache) Len() (results, engines int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.results), len(c.engines)
}

// CacheLen reports how many results and merged engines the ring
// currently caches (primarily for tests and diagnostics).
func (r *Ring) CacheLen() (results, engines int) { return r.cache.Len() }
