package window

import (
	"cocosketch/internal/flowkey"
	"cocosketch/internal/query"
	"cocosketch/internal/sketch"
)

// Window-scoped partial-key queries: each method resolves the range to
// its canonical [from, to) bounds, obtains the merged window engine
// (cached per window), and serves the answer through the result cache
// keyed by (operation, partial key, window). Mutable results (maps,
// row slices) are returned as copies so callers can never corrupt a
// cached value. All methods are safe for concurrent use and never
// block Seal.

// Query returns the estimated size of one partial-key flow over the
// window: the subset sum of the merged full-key estimates mapping to
// m.Apply(partial).
func (r *Ring) Query(rg Range, m flowkey.Mask, partial flowkey.FiveTuple) (uint64, error) {
	r.tel.queries.Inc()
	span, from, to, err := r.resolve(rg)
	if err != nil {
		return 0, err
	}
	key := cacheKey{op: opQuery, from: from, to: to, mask: m, partial: m.Apply(partial)}
	if v, ok := r.cache.get(key); ok {
		r.tel.cacheHits.Inc()
		return v.(uint64), nil
	}
	r.tel.cacheMisses.Inc()
	eng, err := r.engineFor(span, from, to)
	if err != nil {
		return 0, err
	}
	v := eng.Query(m, partial)
	r.cache.put(key, v)
	return v, nil
}

// GroupBy answers the paper's SQL statement for one mask over the
// window: SELECT g(k), SUM(Size) GROUP BY g(k). The returned map is
// the caller's to mutate.
func (r *Ring) GroupBy(rg Range, m flowkey.Mask) (map[flowkey.FiveTuple]uint64, error) {
	r.tel.queries.Inc()
	span, from, to, err := r.resolve(rg)
	if err != nil {
		return nil, err
	}
	key := cacheKey{op: opGroup, from: from, to: to, mask: m}
	if v, ok := r.cache.get(key); ok {
		r.tel.cacheHits.Inc()
		return copyTable(v.(map[flowkey.FiveTuple]uint64)), nil
	}
	r.tel.cacheMisses.Inc()
	eng, err := r.engineFor(span, from, to)
	if err != nil {
		return nil, err
	}
	table := eng.GroupBy(m)
	r.cache.put(key, table)
	return copyTable(table), nil
}

// Top returns the k largest partial-key flows under a mask over the
// window (all of them when k <= 0), sorted by size descending with the
// same deterministic tie-break sketch.TopK applies everywhere else.
// The returned slice is the caller's to mutate.
func (r *Ring) Top(rg Range, m flowkey.Mask, k int) ([]sketch.Entry[flowkey.FiveTuple], error) {
	rows, err := r.rows(rg, m)
	if err != nil {
		return nil, err
	}
	if k <= 0 || k > len(rows) {
		k = len(rows)
	}
	out := make([]sketch.Entry[flowkey.FiveTuple], k)
	copy(out, rows[:k])
	return out, nil
}

// SQL parses and executes the restricted SQL dialect of §4.3 over the
// window; rows come back sorted by size descending. The returned slice
// is the caller's to mutate.
func (r *Ring) SQL(stmt string, rg Range) ([]sketch.Entry[flowkey.FiveTuple], error) {
	m, err := query.ParseSQL(stmt)
	if err != nil {
		return nil, err
	}
	return r.Top(rg, m, 0)
}

// rows returns the full sorted row set for (mask, window) through the
// result cache; Top and SQL slice copies off it.
func (r *Ring) rows(rg Range, m flowkey.Mask) ([]sketch.Entry[flowkey.FiveTuple], error) {
	r.tel.queries.Inc()
	span, from, to, err := r.resolve(rg)
	if err != nil {
		return nil, err
	}
	key := cacheKey{op: opRows, from: from, to: to, mask: m}
	if v, ok := r.cache.get(key); ok {
		r.tel.cacheHits.Inc()
		return v.([]sketch.Entry[flowkey.FiveTuple]), nil
	}
	r.tel.cacheMisses.Inc()
	eng, err := r.engineFor(span, from, to)
	if err != nil {
		return nil, err
	}
	rows := sketch.Entries(eng.GroupBy(m))
	r.cache.put(key, rows)
	return rows, nil
}

// copyTable returns a fresh map with the same contents.
func copyTable(t map[flowkey.FiveTuple]uint64) map[flowkey.FiveTuple]uint64 {
	out := make(map[flowkey.FiveTuple]uint64, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}
