package window

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/query"
)

// The HTTP query endpoint (cococollector -serve-query): a thin
// GET-only JSON front over the ring so dashboards and triage tooling
// consume live windowed answers without linking Go.
//
//	GET /query?sql=SELECT+SrcIP,+SUM(Size)+FROM+table+GROUP+BY+SrcIP&range=3:7&limit=5
//	GET /epochs
//
// The range parameter uses the ParseRange grammar; omitting it queries
// the whole retained ring. Responses carry the CONCRETE resolved
// window, so a client can tell exactly which epochs an open-ended
// range covered.

// RangeSpec is a parsed range parameter: an explicit Range, a trailing
// "last:N" window, or the whole retained ring — the latter two resolved
// against the ring at query time.
type RangeSpec struct {
	// Range is the explicit [from, to) selection (ignored when LastN or
	// Whole is set).
	Range Range
	// LastN, when positive, selects the newest N sealed epochs.
	LastN int
	// Whole selects every retained epoch ("" or "*"). Unlike the
	// explicit Range{0, Open}, it never reaches evicted epochs — it
	// re-resolves to the current retention at each query.
	Whole bool
}

// String renders the spec in the grammar ParseRange accepts, so specs
// round-trip (fuzz-pinned).
func (sp RangeSpec) String() string {
	switch {
	case sp.Whole:
		return "*"
	case sp.LastN > 0:
		return fmt.Sprintf("last:%d", sp.LastN)
	}
	return sp.Range.String()
}

// Resolve turns the spec into the concrete range it denotes on ring r.
func (sp RangeSpec) Resolve(r *Ring) Range {
	switch {
	case sp.Whole:
		if from, to, ok := r.Bounds(); ok {
			return Range{From: from, To: to}
		}
		return All() // nothing sealed: resolves to ErrEmpty downstream
	case sp.LastN > 0:
		return r.LastN(sp.LastN)
	}
	return sp.Range
}

// ParseRange parses the window-range grammar of the query endpoint:
//
//	""  | "*"       whole retained ring
//	"a:b"           epochs [a, b)
//	"a:"            epochs [a, newest]
//	":b"            epochs [oldest, b)
//	"last:N"        the newest N sealed epochs (N >= 1)
//
// Epoch numbers are decimal uint64; a:b requires a < b. Anything else
// is an error (never a panic — fuzz-pinned).
func ParseRange(s string) (RangeSpec, error) {
	switch s {
	case "", "*":
		return RangeSpec{Whole: true}, nil
	}
	if n, ok := strings.CutPrefix(s, "last:"); ok {
		v, err := strconv.ParseUint(n, 10, 31)
		if err != nil || v == 0 {
			return RangeSpec{}, fmt.Errorf("window: bad last:N count %q", n)
		}
		return RangeSpec{LastN: int(v)}, nil
	}
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return RangeSpec{}, fmt.Errorf("window: bad range %q (want from:to, last:N or *)", s)
	}
	rg := Range{From: 0, To: Open}
	if lo != "" {
		v, err := strconv.ParseUint(lo, 10, 64)
		if err != nil {
			return RangeSpec{}, fmt.Errorf("window: bad range start %q", lo)
		}
		rg.From = v
	}
	if hi != "" {
		v, err := strconv.ParseUint(hi, 10, 64)
		if err != nil {
			return RangeSpec{}, fmt.Errorf("window: bad range end %q", hi)
		}
		rg.To = v
	}
	if rg.From >= rg.To {
		return RangeSpec{}, fmt.Errorf("window: empty range %q", s)
	}
	return RangeSpec{Range: rg}, nil
}

// Row is one JSON result row of the query endpoint.
type Row struct {
	// Key renders the masked partial key.
	Key string `json:"key"`
	// Size is the estimated mass.
	Size uint64 `json:"size"`
}

// QueryResponse is the JSON body of a successful /query call.
type QueryResponse struct {
	// Mask is the grouping mask in flowkey syntax.
	Mask string `json:"mask"`
	// From and To are the CONCRETE epoch bounds the answer covers.
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
	// Rows are the result rows, size-descending.
	Rows []Row `json:"rows"`
}

// EpochsResponse is the JSON body of /epochs: the retained span and
// the eviction floor.
type EpochsResponse struct {
	// From and To bound the retained epochs ([from, to)); both 0 while
	// nothing is sealed.
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
	// Epochs lists the retained epoch numbers in ascending order.
	Epochs []uint64 `json:"epochs"`
	// EvictedThrough is the highest evicted epoch (meaningful only
	// when Evicted).
	EvictedThrough uint64 `json:"evicted_through"`
	// Evicted reports whether any epoch has been evicted yet.
	Evicted bool `json:"evicted"`
}

// Handler returns the query endpoint for ring r:
//
//	GET /query?sql=...&range=...&limit=N  → QueryResponse
//	GET /epochs                           → EpochsResponse
//
// Errors map to status codes: 400 for unparseable sql/range/limit, 404
// for a window with no sealed epochs, 410 for a window reaching
// evicted epochs, 405 for non-GET methods.
func Handler(r *Ring) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		q := req.URL.Query()
		stmt := q.Get("sql")
		if stmt == "" {
			http.Error(w, "missing sql parameter", http.StatusBadRequest)
			return
		}
		m, err := query.ParseSQL(stmt)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sp, err := ParseRange(q.Get("range"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		limit := 0
		if ls := q.Get("limit"); ls != "" {
			limit, err = strconv.Atoi(ls)
			if err != nil || limit < 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", ls), http.StatusBadRequest)
				return
			}
		}
		rg := sp.Resolve(r)
		from, to, err := r.Resolve(rg)
		if err == nil {
			var rows []Row
			rows, err = queryRows(r, rg, m, limit)
			if err == nil {
				writeJSON(w, QueryResponse{Mask: m.String(), From: from, To: to, Rows: rows})
				return
			}
		}
		switch {
		case errors.Is(err, ErrEmpty):
			http.Error(w, err.Error(), http.StatusNotFound)
		case errors.Is(err, ErrEvicted):
			http.Error(w, err.Error(), http.StatusGone)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/epochs", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		var resp EpochsResponse
		resp.From, resp.To, _ = r.Bounds()
		for _, s := range r.Sealed() {
			resp.Epochs = append(resp.Epochs, s.Epoch)
		}
		resp.EvictedThrough, resp.Evicted = r.EvictedThrough()
		writeJSON(w, resp)
	})
	return mux
}

// queryRows runs the windowed top query and renders JSON rows.
func queryRows(r *Ring, rg Range, m flowkey.Mask, limit int) ([]Row, error) {
	entries, err := r.Top(rg, m, limit)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, len(entries))
	for i, e := range entries {
		rows[i] = Row{Key: query.RenderPartial(m, e.Key), Size: e.Size}
	}
	return rows, nil
}

// writeJSON sends v as a JSON response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// Serve starts the query endpoint on addr (":0" picks a free port) and
// returns the bound address. The listener serves until process exit —
// the cococollector -serve-query deployment shape, mirroring
// telemetry.Serve.
func Serve(addr string, r *Ring) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("window: query endpoint: %w", err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(l) }()
	return l.Addr().String(), nil
}
