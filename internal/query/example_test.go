package query_test

import (
	"fmt"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/query"
)

// ExampleEngine_SQL reproduces the paper's Figure 7: the full key is
// (SrcIP, SrcPort); the partial key SrcIP is answered by GROUP BY.
func ExampleEngine_SQL() {
	table := map[flowkey.FiveTuple]uint64{
		{SrcIP: [4]byte{19, 98, 10, 26}, SrcPort: 80}:  521,
		{SrcIP: [4]byte{34, 52, 73, 13}, SrcPort: 80}:  305,
		{SrcIP: [4]byte{19, 98, 10, 26}, SrcPort: 81}:  520,
		{SrcIP: [4]byte{34, 52, 73, 17}, SrcPort: 118}: 856,
		{SrcIP: [4]byte{34, 52, 73, 13}, SrcPort: 123}: 463,
	}
	engine := query.NewEngine(table)
	rows, err := engine.SQL("SELECT SrcIP, SUM(Size) FROM table GROUP BY SrcIP")
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Printf("%v %d\n", flowkey.IPv4(r.Key.SrcIP), r.Size)
	}
	// Output:
	// 19.98.10.26 1041
	// 34.52.73.17 856
	// 34.52.73.13 768
}

// ExampleAggregate maps a full-key table through an arbitrary g(·).
func ExampleAggregate() {
	full := map[flowkey.IPv4]uint64{
		{192, 168, 1, 10}: 5,
		{192, 168, 1, 20}: 7,
		{10, 0, 0, 1}:     3,
	}
	by16 := query.Aggregate(full, func(k flowkey.IPv4) flowkey.IPv4 { return k.Prefix(16) })
	fmt.Println(by16[flowkey.IPv4{192, 168, 0, 0}])
	// Output: 12
}
