package query

import (
	"strings"
	"testing"
	"testing/quick"

	"cocosketch/internal/flowkey"
)

func ft(src, dst uint32, sp, dp uint16) flowkey.FiveTuple {
	return flowkey.FiveTuple{
		SrcIP:   flowkey.IPv4FromUint32(src),
		DstIP:   flowkey.IPv4FromUint32(dst),
		SrcPort: sp, DstPort: dp, Proto: 6,
	}
}

// paperTable reproduces the example of Figure 7: full key (SrcIP,
// SrcPort), query SrcIP.
func paperTable() map[flowkey.FiveTuple]uint64 {
	ip1 := uint32(19)<<24 | 98<<16 | 10<<8 | 26 // 19.98.10.26
	ip2 := uint32(34)<<24 | 52<<16 | 73<<8 | 13 // 34.52.73.13
	ip3 := uint32(34)<<24 | 52<<16 | 73<<8 | 17 // 34.52.73.17
	return map[flowkey.FiveTuple]uint64{
		{SrcIP: flowkey.IPv4FromUint32(ip1), SrcPort: 80}:  521,
		{SrcIP: flowkey.IPv4FromUint32(ip2), SrcPort: 80}:  305,
		{SrcIP: flowkey.IPv4FromUint32(ip1), SrcPort: 81}:  520,
		{SrcIP: flowkey.IPv4FromUint32(ip3), SrcPort: 118}: 856,
		{SrcIP: flowkey.IPv4FromUint32(ip2), SrcPort: 123}: 463,
	}
}

func TestGroupByPaperExample(t *testing.T) {
	e := NewEngine(paperTable())
	got := e.GroupBy(flowkey.MaskFields(flowkey.FieldSrcIP))
	want := map[string]uint64{
		"19.98.10.26": 1041,
		"34.52.73.13": 768,
		"34.52.73.17": 856,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d groups, want %d", len(got), len(want))
	}
	for k, v := range got {
		ip := flowkey.IPv4(k.SrcIP).String()
		if want[ip] != v {
			t.Errorf("group %s = %d, want %d", ip, v, want[ip])
		}
	}
}

func TestAggregateConservesTotal(t *testing.T) {
	f := func(vals []uint16) bool {
		table := make(map[flowkey.FiveTuple]uint64)
		var total uint64
		for i, v := range vals {
			table[ft(uint32(i), uint32(i%3), uint16(i), 80)] = uint64(v)
			total += uint64(v)
		}
		for _, m := range flowkey.EvaluationMasks() {
			agg := ByMask(table, m)
			var sum uint64
			for _, v := range agg {
				sum += v
			}
			if sum != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuerySingleKey(t *testing.T) {
	e := NewEngine(paperTable())
	m := flowkey.MaskFields(flowkey.FieldSrcIP)
	probe := flowkey.FiveTuple{SrcIP: [4]byte{19, 98, 10, 26}, SrcPort: 9999}
	if got := e.Query(m, probe); got != 1041 {
		t.Fatalf("Query(SrcIP 19.98.10.26) = %d, want 1041", got)
	}
	if got := e.Query(m, flowkey.FiveTuple{SrcIP: [4]byte{1, 2, 3, 4}}); got != 0 {
		t.Fatalf("Query(absent) = %d, want 0", got)
	}
}

func TestByMaskFullKeyCopies(t *testing.T) {
	table := paperTable()
	got := ByMask(table, flowkey.MaskAll())
	if len(got) != len(table) {
		t.Fatalf("identity grouping changed cardinality")
	}
	for k := range got {
		got[k] = 0 // mutating the copy must not touch the original
	}
	for _, v := range table {
		if v == 0 {
			t.Fatal("ByMask(full) returned the original map")
		}
	}
}

func TestPrefixAggregation(t *testing.T) {
	table := map[flowkey.FiveTuple]uint64{
		ft(0xC0A80101, 1, 1, 1): 10, // 192.168.1.1
		ft(0xC0A80102, 1, 1, 1): 20, // 192.168.1.2
		ft(0xC0A80201, 1, 1, 1): 5,  // 192.168.2.1
	}
	m := flowkey.MaskFields(flowkey.FieldSrcIP).WithPrefix(flowkey.FieldSrcIP, 24)
	got := ByMask(table, m)
	if len(got) != 2 {
		t.Fatalf("want 2 /24 groups, got %d", len(got))
	}
	k24 := flowkey.FiveTuple{SrcIP: [4]byte{192, 168, 1, 0}}
	if got[k24] != 30 {
		t.Fatalf("192.168.1.0/24 = %d, want 30", got[k24])
	}
}

func TestSQLRoundTrip(t *testing.T) {
	e := NewEngine(paperTable())
	rows, err := e.SQL("SELECT SrcIP, SUM(Size) FROM table GROUP BY SrcIP")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0].Size != 1041 {
		t.Fatalf("top row size = %d, want 1041", rows[0].Size)
	}
}

func TestSQLWhitespaceAndCase(t *testing.T) {
	e := NewEngine(paperTable())
	if _, err := e.SQL("select  srcip ,  sum(size)  from table  group by  srcip"); err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
}

func TestSQLErrors(t *testing.T) {
	bad := []string{
		"UPDATE table SET x=1",
		"SELECT SrcIP FROM table GROUP BY SrcIP",            // missing SUM
		"SELECT SrcIP, SUM(Size) FROM table",                // missing GROUP BY
		"SELECT SrcIP, SUM(Size) FROM table GROUP BY DstIP", // mismatch
		"SELECT Bogus, SUM(Size) FROM table GROUP BY Bogus", // unknown field
		"SELECT SrcIP, COUNT(*) FROM table GROUP BY SrcIP",  // wrong aggregate
	}
	e := NewEngine(paperTable())
	for _, stmt := range bad {
		if _, err := e.SQL(stmt); err == nil {
			t.Errorf("statement %q parsed without error", stmt)
		}
	}
}

func TestParseMask(t *testing.T) {
	cases := map[string]flowkey.Mask{
		"SrcIP":          flowkey.MaskFields(flowkey.FieldSrcIP),
		"srcip/24":       flowkey.MaskFields(flowkey.FieldSrcIP).WithPrefix(flowkey.FieldSrcIP, 24),
		"SrcIP+DstIP":    flowkey.MaskFields(flowkey.FieldSrcIP, flowkey.FieldDstIP),
		"5-tuple":        flowkey.MaskAll(),
		"all":            flowkey.MaskAll(),
		"sport + dport":  flowkey.MaskFields(flowkey.FieldSrcPort, flowkey.FieldDstPort),
		"SrcIP/0":        {},
		"proto":          flowkey.MaskFields(flowkey.FieldProto),
		"SrcIP/24+DstIP": flowkey.MaskFields(flowkey.FieldDstIP).WithPrefix(flowkey.FieldSrcIP, 24),
		"":               {},
	}
	for in, want := range cases {
		got, err := flowkey.ParseMask(in)
		if err != nil {
			t.Errorf("ParseMask(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseMask(%q) = %v, want %v", in, got, want)
		}
	}
	for _, in := range []string{"SrcIP/33", "nope", "SrcIP+SrcIP", "SrcIP/-1", "SrcIP/x"} {
		if _, err := flowkey.ParseMask(in); err == nil {
			t.Errorf("ParseMask(%q) did not fail", in)
		}
	}
}

func TestMaskStringParseRoundTrip(t *testing.T) {
	for _, m := range flowkey.EvaluationMasks() {
		got, err := flowkey.ParseMask(m.String())
		if err != nil {
			t.Fatalf("round trip of %v: %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip of %v produced %v", m, got)
		}
	}
}

func TestTopAndFormat(t *testing.T) {
	e := NewEngine(paperTable())
	m := flowkey.MaskFields(flowkey.FieldSrcIP)
	top := e.Top(m, 2)
	if len(top) != 2 || top[0].Size != 1041 || top[1].Size != 856 {
		t.Fatalf("Top(2) = %+v", top)
	}
	out := FormatRows(m, top, 10)
	if !strings.Contains(out, "19.98.10.26") || !strings.Contains(out, "1041") {
		t.Fatalf("FormatRows output missing expected row:\n%s", out)
	}
}

func TestRenderPartialShowsOnlyMaskedFields(t *testing.T) {
	m := flowkey.MaskFields(flowkey.FieldDstPort)
	row := RenderPartial(m, ft(1, 2, 3, 4443))
	if row != "dport=4443" {
		t.Fatalf("RenderPartial = %q", row)
	}
	if got := RenderPartial(flowkey.MaskAll(), ft(1, 2, 3, 4)); !strings.Contains(got, "->") {
		t.Fatalf("full-key render = %q", got)
	}
}
