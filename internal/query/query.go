// Package query implements the control-plane query front-end of §4.3:
// given the decoded full-key table, answer any partial-key query by
// aggregation —
//
//	SELECT g(k_F), SUM(Size) FROM table GROUP BY g(k_F)
//
// Aggregate is the generic engine; Engine wraps a decoded table with the
// Mask-based convenience API used by the experiments and by cocoquery.
package query

import (
	"fmt"
	"sort"
	"strings"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/sketch"
)

// Aggregate groups a full-key table by the mapping g and sums sizes.
// This is Definition 1 applied to estimates: the partial-key estimate is
// the subset sum of the full-key estimates.
func Aggregate[F, P flowkey.Key](table map[F]uint64, g func(F) P) map[P]uint64 {
	out := make(map[P]uint64)
	for k, v := range table {
		out[g(k)] += v
	}
	return out
}

// ByMask aggregates a 5-tuple table under a field/prefix mask.
func ByMask(table map[flowkey.FiveTuple]uint64, m flowkey.Mask) map[flowkey.FiveTuple]uint64 {
	if m.IsFull() {
		// Identity grouping: copy to keep callers free to mutate.
		out := make(map[flowkey.FiveTuple]uint64, len(table))
		for k, v := range table {
			out[k] = v
		}
		return out
	}
	return Aggregate(table, m.Apply)
}

// Engine holds one decoded full-key table and serves partial-key
// queries against it. Build one per measurement window.
type Engine struct {
	table map[flowkey.FiveTuple]uint64
}

// NewEngine wraps a decoded table (as returned by a Decoder).
func NewEngine(table map[flowkey.FiveTuple]uint64) *Engine {
	return &Engine{table: table}
}

// FullTable returns the underlying full-key table (not a copy).
func (e *Engine) FullTable() map[flowkey.FiveTuple]uint64 { return e.table }

// Query returns the estimated size of one partial-key flow: the sum of
// the recorded full-key flows mapping to it.
func (e *Engine) Query(m flowkey.Mask, partial flowkey.FiveTuple) uint64 {
	var sum uint64
	want := m.Apply(partial)
	for k, v := range e.table {
		if m.Apply(k) == want {
			sum += v
		}
	}
	return sum
}

// GroupBy answers the SQL statement of §4.3 for one mask.
func (e *Engine) GroupBy(m flowkey.Mask) map[flowkey.FiveTuple]uint64 {
	return ByMask(e.table, m)
}

// Top returns the k largest partial-key flows under a mask.
func (e *Engine) Top(m flowkey.Mask, k int) []sketch.Entry[flowkey.FiveTuple] {
	return sketch.TopK(e.GroupBy(m), k)
}

// SQL parses and executes the restricted SQL dialect of the paper:
//
//	SELECT <mask>, SUM(Size) FROM table GROUP BY <mask>
//
// where <mask> uses the flowkey mask syntax ("SrcIP/24+DstIP"). The two
// mask occurrences must match. Rows are returned sorted by size
// descending.
func (e *Engine) SQL(stmt string) ([]sketch.Entry[flowkey.FiveTuple], error) {
	m, err := ParseSQL(stmt)
	if err != nil {
		return nil, err
	}
	rows := sketch.Entries(e.GroupBy(m))
	return rows, nil
}

// ParseSQL extracts the grouping mask from the restricted SQL dialect.
func ParseSQL(stmt string) (flowkey.Mask, error) {
	s := strings.Join(strings.Fields(stmt), " ") // normalize whitespace
	up := strings.ToUpper(s)
	if !strings.HasPrefix(up, "SELECT ") {
		return flowkey.Mask{}, fmt.Errorf("query: statement must start with SELECT")
	}
	gb := strings.Index(up, " GROUP BY ")
	if gb < 0 {
		return flowkey.Mask{}, fmt.Errorf("query: missing GROUP BY")
	}
	groupExpr := strings.TrimSpace(s[gb+len(" GROUP BY "):])

	selectPart := strings.TrimSpace(s[len("SELECT "):gb])
	from := strings.Index(strings.ToUpper(selectPart), " FROM ")
	if from < 0 {
		return flowkey.Mask{}, fmt.Errorf("query: missing FROM")
	}
	cols := strings.Split(selectPart[:from], ",")
	if len(cols) != 2 {
		return flowkey.Mask{}, fmt.Errorf("query: want SELECT <key>, SUM(Size)")
	}
	keyExpr := strings.TrimSpace(cols[0])
	sumExpr := strings.ToUpper(strings.ReplaceAll(cols[1], " ", ""))
	if sumExpr != "SUM(SIZE)" {
		return flowkey.Mask{}, fmt.Errorf("query: second column must be SUM(Size), got %q", strings.TrimSpace(cols[1]))
	}

	keyMask, err := flowkey.ParseMask(keyExpr)
	if err != nil {
		return flowkey.Mask{}, err
	}
	groupMask, err := flowkey.ParseMask(groupExpr)
	if err != nil {
		return flowkey.Mask{}, err
	}
	if keyMask != groupMask {
		return flowkey.Mask{}, fmt.Errorf("query: SELECT key %q and GROUP BY key %q differ", keyExpr, groupExpr)
	}
	return keyMask, nil
}

// FormatRows renders rows as an aligned two-column table for CLI output.
func FormatRows(m flowkey.Mask, rows []sketch.Entry[flowkey.FiveTuple], limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %12s\n", m.String(), "Size")
	if limit <= 0 || limit > len(rows) {
		limit = len(rows)
	}
	for _, r := range rows[:limit] {
		fmt.Fprintf(&b, "%-44s %12d\n", RenderPartial(m, r.Key), r.Size)
	}
	return b.String()
}

// RenderPartial prints only the fields of k retained by the mask — the
// row-key rendering shared by FormatRows and the JSON query endpoint
// (internal/window).
func RenderPartial(m flowkey.Mask, k flowkey.FiveTuple) string {
	if m.IsFull() {
		return k.String()
	}
	var parts []string
	if m.Bits[flowkey.FieldSrcIP] > 0 {
		parts = append(parts, fmt.Sprintf("%v", flowkey.IPv4(k.SrcIP)))
	}
	if m.Bits[flowkey.FieldDstIP] > 0 {
		parts = append(parts, fmt.Sprintf("->%v", flowkey.IPv4(k.DstIP)))
	}
	if m.Bits[flowkey.FieldSrcPort] > 0 {
		parts = append(parts, fmt.Sprintf("sport=%d", k.SrcPort))
	}
	if m.Bits[flowkey.FieldDstPort] > 0 {
		parts = append(parts, fmt.Sprintf("dport=%d", k.DstPort))
	}
	if m.Bits[flowkey.FieldProto] > 0 {
		parts = append(parts, fmt.Sprintf("proto=%d", k.Proto))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
