package query_test

// Race-detector test: the query front-end serves concurrent
// partial-key queries against engines published by a live sealing
// loop — the cocoquery-over-live-collector shape, where the decode
// side keeps building fresh tables while readers aggregate the
// previous snapshot. Engines are immutable once built and handed over
// through an atomic pointer, so the whole arrangement must be clean
// under -race (the Makefile "race" target runs this package).

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/query"
	"cocosketch/internal/report"
	"cocosketch/internal/window"
	"cocosketch/internal/xrand"
)

// raceKey derives a deterministic 5-tuple from a flow id, with enough
// spread that every mask in the test produces non-trivial groups.
func raceKey(id uint64) flowkey.FiveTuple {
	x := id*0x9e3779b97f4a7c15 + 1
	return flowkey.FiveTuple{
		SrcIP:   [4]byte{byte(x), byte(x >> 8), byte(x >> 16), byte(x >> 24)},
		DstIP:   [4]byte{byte(x >> 32), byte(x >> 40), byte(x >> 48), byte(x >> 56)},
		SrcPort: uint16(id),
		DstPort: uint16(id >> 2),
		Proto:   17,
	}
}

// TestConcurrentQueriesAgainstLiveSealing runs one producer that
// keeps inserting traffic into a sketch, sealing it through the
// compressed codec and publishing a fresh engine, while several
// readers concurrently exercise every query entry point (Query,
// GroupBy, Top, SQL) on whatever engine is current. Each reader also
// checks the aggregation invariant on its snapshot: grouped mass
// equals full-table mass under any mask.
func TestConcurrentQueriesAgainstLiveSealing(t *testing.T) {
	cfg := core.Config{Arrays: 2, BucketsPerArray: 128, Seed: 5}
	codec, err := report.Compressed[flowkey.FiveTuple](cfg, 4, flowkey.FiveTupleFromBytes)
	if err != nil {
		t.Fatal(err)
	}

	var current atomic.Pointer[query.Engine]
	sk := core.NewBasic[flowkey.FiveTuple](cfg)
	current.Store(query.NewEngine(sk.Decode()))

	masks := make([]flowkey.Mask, 0, 4)
	for _, spec := range []string{"SrcIP", "SrcIP/24+DstIP", "DstIP+DstPort", "Proto"} {
		m, err := flowkey.ParseMask(spec)
		if err != nil {
			t.Fatal(err)
		}
		masks = append(masks, m)
	}

	const (
		rounds  = 200
		packets = 256
		readers = 4
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		wl := xrand.New(42)
		for r := 0; r < rounds; r++ {
			for p := 0; p < packets; p++ {
				sk.Insert(raceKey(wl.Uint64n(512)), 1+wl.Uint64n(3))
			}
			stage, err := codec.Seal(sk)
			if err != nil {
				t.Error(err)
				return
			}
			current.Store(query.NewEngine(stage.Decode()))
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				eng := current.Load()
				m := masks[(r+i)%len(masks)]

				var full uint64
				for _, v := range eng.FullTable() {
					full += v
				}
				var grouped uint64
				for _, v := range eng.GroupBy(m) {
					grouped += v
				}
				if grouped != full {
					t.Errorf("reader %d: grouped mass %d != full mass %d under %v", r, grouped, full, m)
					return
				}
				if top := eng.Top(m, 3); len(top) > 1 && top[0].Size < top[1].Size {
					t.Errorf("reader %d: Top not sorted", r)
					return
				}
				_ = eng.Query(m, raceKey(uint64(i)))
				if _, err := eng.SQL("SELECT SrcIP/24, SUM(Size) FROM table GROUP BY SrcIP/24"); err != nil {
					t.Errorf("reader %d: SQL: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

// TestConcurrentQueriesAgainstWindowRing is the windowed sibling: the
// sealing loop publishes epochs into the query-serving ring
// (internal/window) instead of a single engine pointer, and readers
// obtain their engines through windowed lookups — cache hits, misses,
// eviction-driven invalidation and the single-epoch fast path all
// racing the sealer. Every engine a reader obtains is an immutable
// snapshot, so the same aggregation invariant must hold under -race.
func TestConcurrentQueriesAgainstWindowRing(t *testing.T) {
	cfg := core.Config{Arrays: 2, BucketsPerArray: 128, Seed: 5}
	ring := window.NewRing(3, cfg)

	masks := make([]flowkey.Mask, 0, 4)
	for _, spec := range []string{"SrcIP", "SrcIP/24+DstIP", "DstIP+DstPort", "Proto"} {
		m, err := flowkey.ParseMask(spec)
		if err != nil {
			t.Fatal(err)
		}
		masks = append(masks, m)
	}

	const (
		epochs  = 48
		packets = 256
		readers = 4
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		wl := xrand.New(42)
		for e := uint64(0); e < epochs; e++ {
			sk := core.NewBasic[flowkey.FiveTuple](cfg)
			for p := 0; p < packets; p++ {
				sk.Insert(raceKey(wl.Uint64n(512)), 1+wl.Uint64n(3))
			}
			if err := ring.Seal(e, sk); err != nil {
				t.Errorf("seal %d: %v", e, err)
				return
			}
		}
	}()

	var served atomic.Uint64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := xrand.New(uint64(7 + r))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lo, hi, ok := ring.Bounds()
				if !ok {
					continue
				}
				// Span drawn around the live retention; the sealer may
				// still outrun it (eviction) before the lookup lands.
				from := lo + rng.Uint64n(hi-lo)
				rg := window.Range{From: from, To: from + 1 + rng.Uint64n(3)}
				eng, err := ring.Window(rg)
				if err != nil {
					// The sealer may not have reached the span yet, or may
					// already have evicted it; both are legal mid-race.
					if !errors.Is(err, window.ErrEmpty) && !errors.Is(err, window.ErrEvicted) {
						t.Errorf("reader %d: Window(%v): %v", r, rg, err)
						return
					}
					continue
				}
				served.Add(1)
				m := masks[(r+i)%len(masks)]
				var full uint64
				for _, v := range eng.FullTable() {
					full += v
				}
				var grouped uint64
				for _, v := range eng.GroupBy(m) {
					grouped += v
				}
				if grouped != full {
					t.Errorf("reader %d: grouped mass %d != full mass %d under %v", r, grouped, full, m)
					return
				}
				if top := eng.Top(m, 3); len(top) > 1 && top[0].Size < top[1].Size {
					t.Errorf("reader %d: Top not sorted", r)
					return
				}
				_ = eng.Query(m, raceKey(uint64(i)))
			}
		}(r)
	}
	wg.Wait()
	// Deterministic post-race check: the final retained window must
	// serve, whatever the readers managed to catch mid-flight.
	eng, err := ring.Window(ring.LastN(3))
	if err != nil {
		t.Fatalf("final window: %v", err)
	}
	var full uint64
	for _, v := range eng.FullTable() {
		full += v
	}
	if full == 0 {
		t.Fatal("final window is empty")
	}
	_ = served.Load() // readers may or may not have landed a span; the race coverage is the point
}
