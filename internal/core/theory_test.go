package core

import (
	"math"
	"testing"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/xrand"
)

// These tests validate the paper's theorems empirically, so the
// implementation is tied to the analysis, not just to itself.

// TestTheorem1ReplacementProbability checks that when a packet (e_i, w)
// hits a bucket holding (e_j, f_j), the key is replaced with
// probability exactly w/(f_j+w) — the optimum of Eq. (2).
func TestTheorem1ReplacementProbability(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const fj, w = 12, 4
	const trials = 100000
	replaced := 0
	for trial := 0; trial < trials; trial++ {
		s := NewBasic[flowkey.IPv4](Config{Arrays: 1, BucketsPerArray: 1, Seed: uint64(trial)})
		s.Insert(flowkey.IPv4{1}, fj)
		s.Insert(flowkey.IPv4{2}, w)
		if s.Query(flowkey.IPv4{2}) != 0 {
			replaced++
		}
	}
	got := float64(replaced) / trials
	want := float64(w) / float64(fj+w)
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("replacement rate %.4f, want %.4f", got, want)
	}
}

// TestTheorem2VarianceIncrement checks the variance of each flow's
// estimate after one competing insert: Var[f̂] = w·f_j for both flows
// (summing to the 2wf_j increment of Theorem 2).
func TestTheorem2VarianceIncrement(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const fj, w = 20, 5
	const trials = 200000
	var sumI, sumsqI, sumJ, sumsqJ float64
	for trial := 0; trial < trials; trial++ {
		s := NewBasic[flowkey.IPv4](Config{Arrays: 1, BucketsPerArray: 1, Seed: uint64(trial) + 1})
		s.Insert(flowkey.IPv4{1}, fj)
		s.Insert(flowkey.IPv4{2}, w)
		fi := float64(s.Query(flowkey.IPv4{2}))
		fjEst := float64(s.Query(flowkey.IPv4{1}))
		sumI += fi
		sumsqI += fi * fi
		sumJ += fjEst
		sumsqJ += fjEst * fjEst
	}
	meanI := sumI / trials
	varI := sumsqI/trials - meanI*meanI
	meanJ := sumJ / trials
	varJ := sumsqJ/trials - meanJ*meanJ

	if math.Abs(meanI-w) > 0.1 {
		t.Fatalf("E[f̂_i] = %.3f, want %d (unbiasedness)", meanI, w)
	}
	if math.Abs(meanJ-fj) > 0.2 {
		t.Fatalf("E[f̂_j] = %.3f, want %d (unbiasedness)", meanJ, fj)
	}
	want := float64(w * fj)
	if math.Abs(varI-want) > 0.05*want {
		t.Fatalf("Var[f̂_i] = %.1f, want %.1f", varI, want)
	}
	if math.Abs(varJ-want) > 0.05*want {
		t.Fatalf("Var[f̂_j] = %.1f, want %.1f", varJ, want)
	}
}

// TestLemma5PerArrayVariance checks Var[f̂_i(e)] = f(e)·f̄(e)/l for the
// hardware-friendly variant with d = 1.
func TestLemma5PerArrayVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const l = 16
	const trials = 4000
	// Flow under test f(e) = 200; background f̄ = 3000 split over many
	// small flows.
	const fe, background = 200, 3000
	var sum, sumsq float64
	for trial := 0; trial < trials; trial++ {
		s := NewHardware[flowkey.IPv4](Config{Arrays: 1, BucketsPerArray: l, Seed: uint64(trial)})
		rng := xrand.New(uint64(trial)*31 + 7)
		// Interleave the flow with background uniformly.
		for i := 0; i < fe+background; i++ {
			if rng.Uint64n(uint64(fe+background)) < fe {
				s.Insert(flowkey.IPv4{9, 9, 9, 9}, 1)
			} else {
				s.Insert(flowkey.IPv4FromUint32(uint32(rng.Uint64n(1500))+100), 1)
			}
		}
		v := float64(s.Query(flowkey.IPv4{9, 9, 9, 9}))
		sum += v
		sumsq += v * v
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	// The interleaving makes f(e) itself binomial around fe; allow a
	// loose band around the theoretical f(e)·f̄/l.
	want := float64(fe) * float64(background) / l
	if mean < 0.85*fe || mean > 1.15*fe {
		t.Fatalf("mean estimate %.1f, want about %d", mean, fe)
	}
	if variance < 0.4*want || variance > 2.5*want {
		t.Fatalf("per-array variance %.0f, theory %.0f (f·f̄/l)", variance, want)
	}
}

// TestTheorem3ErrorBound checks the tail bound
// P[R(e) ≥ ε·sqrt(f̄/f)] ≤ δ with l = 3ε⁻² and d = O(log 1/δ).
func TestTheorem3ErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const eps = 0.5
	l := int(3 / (eps * eps)) // 12
	const d = 3
	const trials = 600
	const fe, background = 300, 2000
	exceed := 0
	bound := eps * math.Sqrt(float64(background)/float64(fe)) // ε√(f̄/f)
	for trial := 0; trial < trials; trial++ {
		s := NewHardware[flowkey.IPv4](Config{Arrays: d, BucketsPerArray: l, Seed: uint64(trial)})
		rng := xrand.New(uint64(trial)*17 + 3)
		for i := 0; i < fe; i++ {
			s.Insert(flowkey.IPv4{8, 8, 8, 8}, 1)
		}
		for i := 0; i < background; i++ {
			s.Insert(flowkey.IPv4FromUint32(uint32(rng.Uint64n(900))+100), 1)
		}
		est := float64(s.Query(flowkey.IPv4{8, 8, 8, 8}))
		relErr := math.Abs(est-fe) / fe
		if relErr >= bound {
			exceed++
		}
	}
	// With d=3 the median-of-3 bound gives δ well under 20%; assert a
	// conservative ceiling.
	if rate := float64(exceed) / trials; rate > 0.2 {
		t.Fatalf("tail probability %.3f exceeds bound regime (ε=%.2f, bound=%.2f)", rate, eps, bound)
	}
}

// TestVarianceShrinksWithMemory: doubling l must not increase the
// estimate variance (the resource-accuracy tradeoff direction).
func TestVarianceShrinksWithMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	variance := func(l int) float64 {
		const trials = 800
		var sum, sumsq float64
		for trial := 0; trial < trials; trial++ {
			s := NewHardware[flowkey.IPv4](Config{Arrays: 2, BucketsPerArray: l, Seed: uint64(trial)})
			rng := xrand.New(uint64(trial)*11 + 5)
			for i := 0; i < 200; i++ {
				s.Insert(flowkey.IPv4{7, 7, 7, 7}, 1)
			}
			for i := 0; i < 2000; i++ {
				s.Insert(flowkey.IPv4FromUint32(uint32(rng.Uint64n(800))+100), 1)
			}
			v := float64(s.Query(flowkey.IPv4{7, 7, 7, 7}))
			sum += v
			sumsq += v * v
		}
		mean := sum / trials
		return sumsq/trials - mean*mean
	}
	small, large := variance(8), variance(64)
	if large > small {
		t.Fatalf("variance grew with memory: l=8 → %.0f, l=64 → %.0f", small, large)
	}
}
