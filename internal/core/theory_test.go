package core_test

import (
	"math"
	"testing"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/oracle"
	"cocosketch/internal/xrand"
)

// These tests validate the paper's theorems empirically, so the
// implementation is tied to the analysis, not just to itself. Every
// acceptance band is derived from the theorem under test through the
// oracle package's CI machinery (variance-bound or binomial CIs at
// z = oracle.DefaultZ) — no hand-picked tolerances.

// TestTheorem1ReplacementProbability checks that when a packet (e_i, w)
// hits a bucket holding (e_j, f_j), the key is replaced with
// probability exactly w/(f_j+w) — the optimum of Eq. (2). The band is
// the binomial CI of the empirical rate at that probability.
func TestTheorem1ReplacementProbability(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const fj, w = 12, 4
	const trials = 100000
	replaced := 0
	for trial := 0; trial < trials; trial++ {
		s := core.NewBasic[flowkey.IPv4](core.Config{Arrays: 1, BucketsPerArray: 1, Seed: uint64(trial)})
		s.Insert(flowkey.IPv4{1}, fj)
		s.Insert(flowkey.IPv4{2}, w)
		if s.Query(flowkey.IPv4{2}) != 0 {
			replaced++
		}
	}
	got := float64(replaced) / trials
	want := float64(w) / float64(fj+w)
	ci := oracle.BernoulliCIHalfWidth(want, trials, oracle.DefaultZ)
	if math.Abs(got-want) > ci {
		t.Fatalf("replacement rate %.4f, want %.4f ± %.4f (binomial CI, %d trials)", got, want, ci, trials)
	}
}

// TestTheorem2VarianceIncrement checks both halves of Theorem 2 after
// one competing insert: each flow's estimate is unbiased, and its
// variance equals w·f_j exactly (the two flows together realize the
// 2wf_j total increment). The mean bands are CIs built from that exact
// variance; the variance bands are z standard errors of the sample
// variance (fourth-moment estimate).
func TestTheorem2VarianceIncrement(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const fj, w = 20, 5
	const trials = 200000
	var mi, mj oracle.Moments
	for trial := 0; trial < trials; trial++ {
		s := core.NewBasic[flowkey.IPv4](core.Config{Arrays: 1, BucketsPerArray: 1, Seed: uint64(trial) + 1})
		s.Insert(flowkey.IPv4{1}, fj)
		s.Insert(flowkey.IPv4{2}, w)
		mi.Add(float64(s.Query(flowkey.IPv4{2})))
		mj.Add(float64(s.Query(flowkey.IPv4{1})))
	}
	wantVar := float64(w * fj)
	if err := oracle.CheckMeanWithin("E[f̂_i]", &mi, w, wantVar, 0, oracle.DefaultZ); err != nil {
		t.Fatalf("unbiasedness: %v", err)
	}
	if err := oracle.CheckMeanWithin("E[f̂_j]", &mj, fj, wantVar, 0, oracle.DefaultZ); err != nil {
		t.Fatalf("unbiasedness: %v", err)
	}
	// Theorem 2 gives the variance exactly for this construction, so
	// the check is two-sided: the sample variance must not deviate in
	// either direction beyond its own standard error band.
	for name, m := range map[string]*oracle.Moments{"Var[f̂_i]": &mi, "Var[f̂_j]": &mj} {
		if got := m.Variance(); math.Abs(got-wantVar) > oracle.DefaultZ*m.StdErrVariance() {
			t.Fatalf("%s = %.2f, want %.2f ± %.2f (z·SE of sample variance)",
				name, got, wantVar, oracle.DefaultZ*m.StdErrVariance())
		}
	}
}

// TestLemma5PerArrayVariance checks Var[f̂(e)] = f(e)·f̄(e)/l for the
// hardware-friendly variant with d = 1: the mean is asserted within a
// CI built from that theoretical variance, and the sample variance is
// asserted two-sided within z standard errors of the Lemma 5 value.
func TestLemma5PerArrayVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const l = 16
	const trials = 4000
	// Flow under test f(e) = 200; background f̄ = 3000 split over many
	// small flows. Per-trial realized counts are tracked exactly so the
	// interleaving randomness does not blur the theorem's f and f̄.
	const fe, background = 200, 3000
	var m oracle.Moments
	var realizedFe float64
	for trial := 0; trial < trials; trial++ {
		s := core.NewHardware[flowkey.IPv4](core.Config{Arrays: 1, BucketsPerArray: l, Seed: uint64(trial)})
		rng := xrand.New(uint64(trial)*31 + 7)
		thisFe := 0
		for i := 0; i < fe+background; i++ {
			if rng.Uint64n(uint64(fe+background)) < fe {
				s.Insert(flowkey.IPv4{9, 9, 9, 9}, 1)
				thisFe++
			} else {
				s.Insert(flowkey.IPv4FromUint32(uint32(rng.Uint64n(1500))+100), 1)
			}
		}
		realizedFe += float64(thisFe)
		m.Add(float64(s.Query(flowkey.IPv4{9, 9, 9, 9})))
	}
	meanFe := realizedFe / trials
	want := meanFe * (float64(fe+background) - meanFe) / l
	if err := oracle.CheckMeanWithin("d=1 estimate", &m, meanFe, want, 0, oracle.DefaultZ); err != nil {
		t.Fatalf("Lemma 4 unbiasedness: %v", err)
	}
	// The realized f(e) varies per trial (binomial interleave), adding
	// Var[f] ≈ fe·(1−fe/total) ≪ want on top of the Lemma 5 value; it
	// is covered by the standard-error band.
	if got := m.Variance(); math.Abs(got-want) > oracle.DefaultZ*m.StdErrVariance() {
		t.Fatalf("per-array variance %.0f, Lemma 5 value %.0f ± %.0f (z·SE)",
			got, want, oracle.DefaultZ*m.StdErrVariance())
	}
}

// TestTheorem3ErrorBound checks the tail bound P[R(e) ≥ ε·sqrt(f̄/f)]
// ≤ δ with l = 3ε⁻² and d = 3. Chebyshev gives a per-array exceed
// probability of at most 1/(l·ε²) = 1/3; the median of 3 arrays
// exceeds only when ≥ 2 arrays do, so δ ≤ P[Bin(3, 1/3) ≥ 2] = 7/27.
// The assertion allows the binomial CI of that rate on top.
func TestTheorem3ErrorBound(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const eps = 0.5
	l := int(3 / (eps * eps)) // 12
	const d = 3
	const trials = 600
	const fe, background = 300, 2000
	exceed := 0
	bound := eps * math.Sqrt(float64(background)/float64(fe)) // ε√(f̄/f)
	for trial := 0; trial < trials; trial++ {
		s := core.NewHardware[flowkey.IPv4](core.Config{Arrays: d, BucketsPerArray: l, Seed: uint64(trial)})
		rng := xrand.New(uint64(trial)*17 + 3)
		for i := 0; i < fe; i++ {
			s.Insert(flowkey.IPv4{8, 8, 8, 8}, 1)
		}
		for i := 0; i < background; i++ {
			s.Insert(flowkey.IPv4FromUint32(uint32(rng.Uint64n(900))+100), 1)
		}
		est := float64(s.Query(flowkey.IPv4{8, 8, 8, 8}))
		relErr := math.Abs(est-fe) / fe
		if relErr >= bound {
			exceed++
		}
	}
	delta := 7.0 / 27.0
	ceiling := delta + oracle.BernoulliCIHalfWidth(delta, trials, oracle.DefaultZ)
	if rate := float64(exceed) / trials; rate > ceiling {
		t.Fatalf("tail probability %.3f exceeds δ = 7/27 + binomial CI = %.3f (ε=%.2f, bound=%.2f)", rate, ceiling, eps, bound)
	}
}

// TestVarianceShrinksWithMemory: doubling l must not increase the
// estimate variance (the resource-accuracy tradeoff direction). This
// is a directional comparison, not a tolerance.
func TestVarianceShrinksWithMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	variance := func(l int) float64 {
		const trials = 800
		var m oracle.Moments
		for trial := 0; trial < trials; trial++ {
			s := core.NewHardware[flowkey.IPv4](core.Config{Arrays: 2, BucketsPerArray: l, Seed: uint64(trial)})
			rng := xrand.New(uint64(trial)*11 + 5)
			for i := 0; i < 200; i++ {
				s.Insert(flowkey.IPv4{7, 7, 7, 7}, 1)
			}
			for i := 0; i < 2000; i++ {
				s.Insert(flowkey.IPv4FromUint32(uint32(rng.Uint64n(800))+100), 1)
			}
			m.Add(float64(s.Query(flowkey.IPv4{7, 7, 7, 7})))
		}
		return m.Variance()
	}
	small, large := variance(8), variance(64)
	if large > small {
		t.Fatalf("variance grew with memory: l=8 → %.0f, l=64 → %.0f", small, large)
	}
}
