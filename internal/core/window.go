package core

import (
	"fmt"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/telemetry"
)

// Window maintains measurement over the last W epochs as a ring of
// CocoSketch shards: inserts go to the current epoch's shard, Rotate
// retires the oldest shard, and queries merge the live shards. This is
// the sliding-window deployment pattern (continuous monitoring with
// bounded staleness) built on the estimate-preserving Merge.
//
// Not safe for concurrent use.
type Window struct {
	cfg    Config
	shards []*Basic[flowkey.FiveTuple]
	// cur indexes the shard receiving inserts.
	cur int
	// epoch counts total rotations, for labeling.
	epoch uint64
	// tel, when set, receives rotation counts and is installed on
	// shards created by Rotate.
	tel *telemetry.SketchMetrics
}

// NewWindow creates a sliding window of w epochs, each shard using the
// shared configuration (so they merge).
func NewWindow(w int, cfg Config) *Window {
	if w <= 0 {
		panic("core: window must cover at least one epoch")
	}
	win := &Window{cfg: cfg, shards: make([]*Basic[flowkey.FiveTuple], w)}
	for i := range win.shards {
		win.shards[i] = NewBasic[flowkey.FiveTuple](cfg)
	}
	return win
}

// Epochs returns the window width.
func (w *Window) Epochs() int { return len(w.shards) }

// Epoch returns the number of completed rotations.
func (w *Window) Epoch() uint64 { return w.epoch }

// Insert records a packet into the current epoch.
func (w *Window) Insert(key flowkey.FiveTuple, weight uint64) {
	w.shards[w.cur].Insert(key, weight)
}

// Rotate closes the current epoch: the oldest shard is discarded and
// replaced by a fresh one, which becomes current.
func (w *Window) Rotate() {
	w.cur = (w.cur + 1) % len(w.shards)
	w.shards[w.cur] = NewBasic[flowkey.FiveTuple](w.cfg).SetTelemetry(w.tel)
	w.epoch++
	if w.tel != nil {
		w.tel.Rotations.Inc()
	}
}

// Decode merges the live shards into one full-key table covering the
// whole window.
func (w *Window) Decode() (map[flowkey.FiveTuple]uint64, error) {
	merged := NewBasic[flowkey.FiveTuple](w.cfg)
	for _, s := range w.shards {
		if err := merged.Merge(s); err != nil {
			return nil, fmt.Errorf("core: window decode: %w", err)
		}
	}
	return merged.Decode(), nil
}

// DecodeEpoch returns the table of the current (still open) epoch only.
func (w *Window) DecodeEpoch() map[flowkey.FiveTuple]uint64 {
	return w.shards[w.cur].Decode()
}

// MemoryBytes is the total footprint across shards.
func (w *Window) MemoryBytes() int {
	return len(w.shards) * w.shards[0].MemoryBytes()
}
