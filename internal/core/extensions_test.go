package core

import (
	"math"
	"testing"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/xrand"
)

func TestMergeConservesWeight(t *testing.T) {
	cfg := Config{Arrays: 2, BucketsPerArray: 32, Seed: 5}
	a := NewBasic[flowkey.FiveTuple](cfg)
	b := NewBasic[flowkey.FiveTuple](cfg)
	rng := xrand.New(9)
	var total uint64
	for i := 0; i < 20000; i++ {
		w := rng.Uint64n(9) + 1
		k := tuple(uint32(rng.Uint64n(300)), 80)
		if i%2 == 0 {
			a.Insert(k, w)
		} else {
			b.Insert(k, w)
		}
		total += w
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.SumValues(); got != total {
		t.Fatalf("merged sum = %d, want %d", got, total)
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 32, Seed: 5})
	b := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 64, Seed: 5})
	if err := a.Merge(b); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	c := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 32, Seed: 6})
	if err := a.Merge(c); err == nil {
		t.Fatal("seed mismatch accepted")
	}
}

func TestMergeUnbiased(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// Split one stream across two shards, merge, and check the mean
	// estimate of the dominant flow across trials.
	const trials = 200
	heavy := tuple(1, 1)
	var sum float64
	for trial := 0; trial < trials; trial++ {
		cfg := Config{Arrays: 2, BucketsPerArray: 8, Seed: uint64(trial)}
		a := NewBasic[flowkey.FiveTuple](cfg)
		b := NewBasic[flowkey.FiveTuple](cfg)
		rng := xrand.New(uint64(trial) * 3)
		for i := 0; i < 8000; i++ {
			var k flowkey.FiveTuple
			if rng.Uint64n(4) == 0 {
				k = heavy
			} else {
				k = tuple(uint32(rng.Uint64n(40))+10, 2)
			}
			if rng.Uint64n(2) == 0 {
				a.Insert(k, 1)
			} else {
				b.Insert(k, 1)
			}
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		sum += float64(a.Decode()[heavy])
	}
	mean := sum / trials
	if math.Abs(mean-2000) > 200 {
		t.Fatalf("merged mean estimate %.0f, want about 2000", mean)
	}
}

func TestCompressConservesWeight(t *testing.T) {
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 64, Seed: 7})
	rng := xrand.New(11)
	var total uint64
	for i := 0; i < 30000; i++ {
		w := rng.Uint64n(5) + 1
		s.Insert(tuple(uint32(rng.Uint64n(1000)), 3), w)
		total += w
	}
	if err := s.Compress(4); err != nil {
		t.Fatal(err)
	}
	if s.BucketsPerArray() != 16 {
		t.Fatalf("l after compress = %d, want 16", s.BucketsPerArray())
	}
	if got := s.SumValues(); got != total {
		t.Fatalf("compressed sum = %d, want %d", got, total)
	}
	// The sketch must still accept inserts and keep conserving.
	s.Insert(tuple(1, 1), 5)
	if got := s.SumValues(); got != total+5 {
		t.Fatalf("post-compress insert broke conservation")
	}
}

func TestCompressKeepsAddressing(t *testing.T) {
	// A flow's recorded bucket must remain addressable after
	// compression: query the dominant flow before and after.
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 128, Seed: 13})
	heavy := tuple(42, 42)
	for i := 0; i < 10000; i++ {
		s.Insert(heavy, 1)
	}
	rng := xrand.New(17)
	for i := 0; i < 2000; i++ {
		s.Insert(tuple(uint32(rng.Uint64n(500))+100, 9), 1)
	}
	before := s.Query(heavy)
	if before == 0 {
		t.Fatal("heavy flow lost before compression")
	}
	if err := s.Compress(2); err != nil {
		t.Fatal(err)
	}
	after := s.Query(heavy)
	if after < before {
		t.Fatalf("heavy flow estimate shrank after compression: %d -> %d", before, after)
	}
}

func TestCompressBadFactor(t *testing.T) {
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 1, BucketsPerArray: 8, Seed: 1})
	if err := s.Compress(3); err == nil {
		t.Fatal("non-power-of-two factor accepted")
	}
	odd := NewBasic[flowkey.FiveTuple](Config{Arrays: 1, BucketsPerArray: 7, Seed: 1})
	if err := odd.Compress(2); err == nil {
		t.Fatal("odd bucket count halved")
	}
}

func TestSerializeRoundTripBasic(t *testing.T) {
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 16, Seed: 3})
	pkts := stream(50, 20000, 4)
	for _, p := range pkts {
		s.Insert(p, 1)
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalBasic(blob, flowkey.FiveTupleFromBytes)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := s.Decode(), back.Decode()
	if len(d1) != len(d2) {
		t.Fatalf("decode sizes differ: %d vs %d", len(d1), len(d2))
	}
	for k, v := range d1 {
		if d2[k] != v {
			t.Fatalf("restored decode differs at %v", k)
		}
	}
	// Continued insertion is deterministic across the round trip.
	more := stream(50, 5000, 5)
	for _, p := range more {
		s.Insert(p, 1)
		back.Insert(p, 1)
	}
	if s.SumValues() != back.SumValues() {
		t.Fatal("post-restore insertion diverged in total")
	}
	d1, d2 = s.Decode(), back.Decode()
	for k, v := range d1 {
		if d2[k] != v {
			t.Fatalf("post-restore decode differs at %v", k)
		}
	}
}

func TestSerializeRoundTripHardware(t *testing.T) {
	s := NewHardware[flowkey.IPv4](Config{Arrays: 3, BucketsPerArray: 8, Seed: 9})
	rng := xrand.New(1)
	for i := 0; i < 5000; i++ {
		s.Insert(flowkey.IPv4FromUint32(uint32(rng.Uint64n(100))), 1)
	}
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalHardware(blob, flowkey.IPv4FromBytes)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range s.Decode() {
		if back.Query(k) != v {
			t.Fatalf("restored hardware sketch differs at %v", k)
		}
	}
}

func TestSerializeRejectsGarbage(t *testing.T) {
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 4, Seed: 1})
	blob, _ := s.MarshalBinary()

	cases := map[string][]byte{
		"empty":         {},
		"short":         blob[:10],
		"badmagic":      append([]byte("XXXX"), blob[4:]...),
		"badversion":    append(append([]byte{}, blob[:4]...), append([]byte{99}, blob[5:]...)...),
		"wrongvariant":  func() []byte { b := append([]byte{}, blob...); b[5] = variantHardware; return b }(),
		"truncatedtail": blob[:len(blob)-1],
	}
	for name, data := range cases {
		if _, err := UnmarshalBasic(data, flowkey.FiveTupleFromBytes); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Wrong key type (different key size).
	if _, err := UnmarshalBasic(blob, flowkey.IPv4FromBytes); err == nil {
		t.Error("wrong key size accepted")
	}
}

func TestSampledUnbiased(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const trials = 150
	heavy := tuple(5, 5)
	var sum float64
	for trial := 0; trial < trials; trial++ {
		inner := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 64, Seed: uint64(trial)})
		s := NewSampled[flowkey.FiveTuple](inner, 1, 10, uint64(trial)*7+1)
		rng := xrand.New(uint64(trial) * 13)
		for i := 0; i < 30000; i++ {
			if rng.Uint64n(3) == 0 {
				s.Insert(heavy, 1)
			} else {
				s.Insert(tuple(uint32(rng.Uint64n(50))+10, 1), 1)
			}
		}
		sum += float64(inner.Query(heavy))
	}
	mean := sum / trials
	if math.Abs(mean-10000) > 1000 {
		t.Fatalf("sampled mean estimate %.0f, want about 10000", mean)
	}
}

func TestSampledFullRate(t *testing.T) {
	inner := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 64, Seed: 1})
	s := NewSampled[flowkey.FiveTuple](inner, 1, 1, 2)
	for i := 0; i < 1000; i++ {
		s.Insert(tuple(1, 1), 1)
	}
	if got := inner.Query(tuple(1, 1)); got != 1000 {
		t.Fatalf("p=1 sampling altered the stream: %d", got)
	}
}

func TestSampledSkipsMostPackets(t *testing.T) {
	inner := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 1024, Seed: 1})
	s := NewSampled[flowkey.FiveTuple](inner, 1, 100, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		s.Insert(tuple(uint32(i), 1), 1)
	}
	// Roughly n/100 distinct flows should have been touched.
	touched := len(inner.Decode())
	if touched < n/100/2 || touched > n/100*2 {
		t.Fatalf("sampled %d flows, want about %d", touched, n/100)
	}
}

func TestSampledPanicsOnBadProbability(t *testing.T) {
	inner := NewBasic[flowkey.FiveTuple](Config{Arrays: 1, BucketsPerArray: 4, Seed: 1})
	for _, pq := range [][2]uint64{{0, 5}, {5, 0}, {6, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("probability %d/%d accepted", pq[0], pq[1])
				}
			}()
			NewSampled[flowkey.FiveTuple](inner, pq[0], pq[1], 1)
		}()
	}
}

func TestSampledZeroWeightNoop(t *testing.T) {
	inner := NewBasic[flowkey.FiveTuple](Config{Arrays: 1, BucketsPerArray: 4, Seed: 1})
	s := NewSampled[flowkey.FiveTuple](inner, 1, 1, 1)
	s.Insert(tuple(1, 1), 0)
	if inner.SumValues() != 0 {
		t.Fatal("zero-weight insert changed state")
	}
}

func BenchmarkSampledInsert(b *testing.B) {
	pkts := stream(10000, 1<<16, 1)
	for _, rate := range []struct {
		name     string
		num, den uint64
	}{{"p=1", 1, 1}, {"p=0.1", 1, 10}, {"p=0.01", 1, 100}} {
		b.Run(rate.name, func(b *testing.B) {
			inner := NewBasicForMemory[flowkey.FiveTuple](2, 500*1024, 1)
			s := NewSampled[flowkey.FiveTuple](inner, rate.num, rate.den, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Insert(pkts[i&(len(pkts)-1)], 1)
			}
		})
	}
}
