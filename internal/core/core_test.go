package core

import (
	"math"
	"testing"
	"testing/quick"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/xrand"
)

func tuple(src uint32, port uint16) flowkey.FiveTuple {
	return flowkey.FiveTuple{
		SrcIP:   flowkey.IPv4FromUint32(src),
		DstIP:   flowkey.IPv4FromUint32(0x0a000001),
		SrcPort: port, DstPort: 443, Proto: 6,
	}
}

// stream produces a deterministic packet stream over nFlows flows with
// sizes roughly geometric, interleaved pseudo-randomly.
func stream(nFlows, nPackets int, seed uint64) []flowkey.FiveTuple {
	rng := xrand.New(seed)
	flows := make([]flowkey.FiveTuple, nFlows)
	for i := range flows {
		flows[i] = tuple(uint32(0xC0000000+i), uint16(1000+i))
	}
	pkts := make([]flowkey.FiveTuple, nPackets)
	for i := range pkts {
		// Skewed choice: flow j with probability ~ 2^-j.
		j := 0
		for j < nFlows-1 && rng.Uint64n(2) == 0 {
			j++
		}
		pkts[i] = flows[j]
	}
	return pkts
}

func trueCounts(pkts []flowkey.FiveTuple) map[flowkey.FiveTuple]uint64 {
	m := make(map[flowkey.FiveTuple]uint64)
	for _, p := range pkts {
		m[p]++
	}
	return m
}

func TestConfigForMemory(t *testing.T) {
	cfg := ConfigForMemory[flowkey.FiveTuple](2, 500*1024, 1)
	if cfg.Arrays != 2 {
		t.Fatalf("Arrays = %d", cfg.Arrays)
	}
	wantL := 500 * 1024 / (2 * (13 + 8))
	if cfg.BucketsPerArray != wantL {
		t.Fatalf("BucketsPerArray = %d, want %d", cfg.BucketsPerArray, wantL)
	}
	s := NewBasic[flowkey.FiveTuple](cfg)
	if s.MemoryBytes() > 500*1024 {
		t.Fatalf("MemoryBytes %d exceeds budget", s.MemoryBytes())
	}
	if s.Arrays() != 2 || s.BucketsPerArray() != wantL {
		t.Fatal("accessors disagree with config")
	}
}

func TestConfigForMemoryTiny(t *testing.T) {
	cfg := ConfigForMemory[flowkey.FiveTuple](4, 1, 1)
	if cfg.BucketsPerArray != 1 {
		t.Fatalf("tiny budget should clamp to 1 bucket, got %d", cfg.BucketsPerArray)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{{Arrays: 0, BucketsPerArray: 4}, {Arrays: 2, BucketsPerArray: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewBasic[flowkey.FiveTuple](cfg)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ConfigForMemory with d=0 did not panic")
			}
		}()
		ConfigForMemory[flowkey.FiveTuple](0, 1024, 1)
	}()
}

func TestBasicSumConservation(t *testing.T) {
	// Invariant: the sum of all counters equals the total inserted
	// weight — stochastic variance minimization moves keys, never mass.
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 16, Seed: 1})
	var total uint64
	rng := xrand.New(2)
	for i := 0; i < 10000; i++ {
		w := rng.Uint64n(100) + 1
		s.Insert(tuple(uint32(rng.Uint64n(500)), 80), w)
		total += w
	}
	if got := s.SumValues(); got != total {
		t.Fatalf("counter sum = %d, want %d", got, total)
	}
	// Decode must conserve it too.
	var decTotal uint64
	for _, v := range s.Decode() {
		decTotal += v
	}
	if decTotal != total {
		t.Fatalf("decode sum = %d, want %d", decTotal, total)
	}
}

func TestHardwareSumConservationPerArray(t *testing.T) {
	const d = 3
	s := NewHardware[flowkey.FiveTuple](Config{Arrays: d, BucketsPerArray: 16, Seed: 1})
	var total uint64
	rng := xrand.New(2)
	for i := 0; i < 10000; i++ {
		w := rng.Uint64n(100) + 1
		s.Insert(tuple(uint32(rng.Uint64n(500)), 80), w)
		total += w
	}
	if got := s.SumValues(); got != d*total {
		t.Fatalf("counter sum = %d, want %d (each array conserves weight)", got, d*total)
	}
}

func TestBasicExactWhenNoCollisions(t *testing.T) {
	// With far more buckets than flows, every flow keeps its own bucket
	// and estimates are exact.
	pkts := stream(8, 20000, 3)
	truth := trueCounts(pkts)
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 4096, Seed: 4})
	for _, p := range pkts {
		s.Insert(p, 1)
	}
	for k, want := range truth {
		if got := s.Query(k); got != want {
			t.Fatalf("flow %v: got %d, want %d", k, got, want)
		}
	}
	dec := s.Decode()
	if len(dec) != len(truth) {
		t.Fatalf("decode has %d flows, want %d", len(dec), len(truth))
	}
}

func TestBasicQueryUnknownFlow(t *testing.T) {
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 64, Seed: 9})
	if got := s.Query(tuple(1, 1)); got != 0 {
		t.Fatalf("empty sketch Query = %d, want 0", got)
	}
	s.Insert(tuple(1, 1), 10)
	if got := s.Query(tuple(2, 2)); got != 0 {
		t.Fatalf("unknown flow Query = %d, want 0", got)
	}
}

func TestZeroWeightInsertIsNoop(t *testing.T) {
	b := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 8, Seed: 1})
	h := NewHardware[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 8, Seed: 1})
	b.Insert(tuple(1, 1), 0)
	h.Insert(tuple(1, 1), 0)
	if b.SumValues() != 0 || h.SumValues() != 0 {
		t.Fatal("zero-weight insert changed state")
	}
}

func TestBasicFirstInsertAlwaysRecorded(t *testing.T) {
	// Replacement probability on an empty bucket is w/w = 1, so the
	// first flow into a bucket is always recorded.
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 1024, Seed: 5})
	k := tuple(7, 7)
	s.Insert(k, 3)
	if got := s.Query(k); got != 3 {
		t.Fatalf("first insert not recorded: Query = %d", got)
	}
}

// estimateBias runs many independent trials and checks E[f̂] ≈ f for
// both full keys and an aggregated partial key.
func estimateBias(t *testing.T, newSketch func(seed uint64) interface {
	Insert(flowkey.FiveTuple, uint64)
	Decode() map[flowkey.FiveTuple]uint64
}) {
	t.Helper()
	pkts := stream(12, 6000, 42)
	truth := trueCounts(pkts)

	const trials = 300
	sum := make(map[flowkey.FiveTuple]float64)
	srcMask := flowkey.MaskFields(flowkey.FieldSrcIP)
	sumSrc := make(map[flowkey.FiveTuple]float64)
	truthSrc := make(map[flowkey.FiveTuple]uint64)
	for k, v := range truth {
		truthSrc[srcMask.Apply(k)] += v
	}

	for trial := 0; trial < trials; trial++ {
		s := newSketch(uint64(trial) + 1)
		for _, p := range pkts {
			s.Insert(p, 1)
		}
		dec := s.Decode()
		for k, v := range dec {
			sum[k] += float64(v)
			sumSrc[srcMask.Apply(k)] += float64(v)
		}
	}

	// Check the biggest flows: relative bias under 10% (small flows are
	// noisy at 300 trials; unbiasedness is also covered by the sum
	// conservation tests).
	for k, want := range truth {
		if want < 500 {
			continue
		}
		got := sum[k] / trials
		if math.Abs(got-float64(want)) > 0.1*float64(want) {
			t.Errorf("full key %v: mean estimate %.1f, true %d", k, got, want)
		}
	}
	for k, want := range truthSrc {
		if want < 500 {
			continue
		}
		got := sumSrc[k] / trials
		if math.Abs(got-float64(want)) > 0.1*float64(want) {
			t.Errorf("partial key %v: mean estimate %.1f, true %d", k, got, want)
		}
	}
}

func TestBasicUnbiased(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	estimateBias(t, func(seed uint64) interface {
		Insert(flowkey.FiveTuple, uint64)
		Decode() map[flowkey.FiveTuple]uint64
	} {
		// Deliberately undersized: 2×6 buckets for 12 flows forces
		// evictions, which is where bias would show up.
		return NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 6, Seed: seed})
	})
}

func TestHardwareUnbiasedPerArray(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// d=1 hardware: the single-array estimate is provably unbiased
	// (Lemma 4); with d=2 the median equals the mean of two unbiased
	// estimates, also unbiased.
	estimateBias(t, func(seed uint64) interface {
		Insert(flowkey.FiveTuple, uint64)
		Decode() map[flowkey.FiveTuple]uint64
	} {
		return NewHardware[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 6, Seed: seed})
	})
}

func TestHardwareRecallBound(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// Theorem 4: P[recorded] ≥ 1 − (1 + l·f/f̄)^−d. Check a heavy
	// hitter at 1% of traffic with d=2, l=900 → recall ≥ 99%.
	const trials = 200
	recorded := 0
	heavy := tuple(0xdead, 1)
	for trial := 0; trial < trials; trial++ {
		s := NewHardware[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 900, Seed: uint64(trial)})
		rng := xrand.New(uint64(trial) * 7)
		// 100k packets, 1% to the heavy flow, rest spread over 20k flows.
		for i := 0; i < 100000; i++ {
			if rng.Uint64n(100) == 0 {
				s.Insert(heavy, 1)
			} else {
				s.Insert(tuple(uint32(rng.Uint64n(20000)), 2), 1)
			}
		}
		if s.Query(heavy) > 0 {
			recorded++
		}
	}
	if rate := float64(recorded) / trials; rate < 0.97 {
		t.Fatalf("heavy hitter recall = %.3f, theorem promises ≥ 0.99", rate)
	}
}

func TestHardwareDecodeMatchesQuery(t *testing.T) {
	pkts := stream(40, 20000, 8)
	s := NewHardware[flowkey.FiveTuple](Config{Arrays: 3, BucketsPerArray: 32, Seed: 6})
	for _, p := range pkts {
		s.Insert(p, 1)
	}
	for k, v := range s.Decode() {
		if q := s.Query(k); q != v {
			t.Fatalf("decode[%v] = %d but Query = %d", k, v, q)
		}
	}
}

func TestHardwareQueryMedianOddEven(t *testing.T) {
	if got := median([]uint64{5}); got != 5 {
		t.Fatalf("median[5] = %d", got)
	}
	if got := median([]uint64{4, 10}); got != 7 {
		t.Fatalf("median[4,10] = %d", got)
	}
	if got := median([]uint64{10, 0}); got != 5 {
		t.Fatalf("median[10,0] = %d", got)
	}
	if got := median([]uint64{3, 9, 1}); got != 3 {
		t.Fatalf("median[3,9,1] = %d", got)
	}
	if got := median([]uint64{8, 2, 4, 6}); got != 5 {
		t.Fatalf("median[8,2,4,6] = %d", got)
	}
	if got := median(nil); got != 0 {
		t.Fatalf("median[] = %d", got)
	}
}

func TestMedianIsOrderInvariant(t *testing.T) {
	f := func(a, b, c, dd uint64) bool {
		perms := [][]uint64{
			{a, b, c, dd}, {dd, c, b, a}, {b, dd, a, c},
		}
		want := median(append([]uint64(nil), perms[0]...))
		for _, p := range perms[1:] {
			if median(append([]uint64(nil), p...)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBasicHeavyHitterAccuracy(t *testing.T) {
	// End-to-end: under memory pressure, the top flows must be found
	// with small relative error (the paper's headline behaviour).
	pkts := stream(16, 100000, 21)
	truth := trueCounts(pkts)
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 8, Seed: 10})
	for _, p := range pkts {
		s.Insert(p, 1)
	}
	for k, want := range truth {
		if want < uint64(len(pkts)/10) {
			continue // only the heavy flows
		}
		got := s.Query(k)
		if got == 0 {
			t.Fatalf("heavy flow %v (size %d) evicted", k, want)
		}
		re := math.Abs(float64(got)-float64(want)) / float64(want)
		if re > 0.25 {
			t.Errorf("heavy flow %v: estimate %d vs true %d (re=%.2f)", k, got, want, re)
		}
	}
}

func TestHardwareSetDivider(t *testing.T) {
	s := NewHardware[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 8, Seed: 1})
	if s.Name() != "CocoSketch-HW" {
		t.Fatalf("Name = %q", s.Name())
	}
	s.SetDivider(fakeDivider{})
	if s.Name() != "CocoSketch-HW(fake)" {
		t.Fatalf("Name after SetDivider = %q", s.Name())
	}
	// fakeDivider never replaces, so a second flow can never be recorded.
	a, b := tuple(1, 1), tuple(2, 2)
	s.Insert(a, 100)
	for i := 0; i < 100; i++ {
		s.Insert(b, 1)
	}
	if s.Query(b) != 0 {
		t.Fatal("divider that never replaces still recorded a new key")
	}
}

type fakeDivider struct{}

func (fakeDivider) Replace(*xrand.Source, uint64, uint64) bool { return false }
func (fakeDivider) Name() string                               { return "fake" }

func TestBasicSeedsProduceDifferentLayouts(t *testing.T) {
	pkts := stream(64, 5000, 11)
	a := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 16, Seed: 1})
	b := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 16, Seed: 2})
	for _, p := range pkts {
		a.Insert(p, 1)
		b.Insert(p, 1)
	}
	da, db := a.Decode(), b.Decode()
	same := 0
	for k, v := range da {
		if db[k] == v {
			same++
		}
	}
	if same == len(da) {
		t.Fatal("different seeds produced identical decodes")
	}
}

func TestBasicDeterministicForFixedSeed(t *testing.T) {
	pkts := stream(64, 5000, 11)
	run := func() map[flowkey.FiveTuple]uint64 {
		s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 16, Seed: 33})
		for _, p := range pkts {
			s.Insert(p, 1)
		}
		return s.Decode()
	}
	d1, d2 := run(), run()
	if len(d1) != len(d2) {
		t.Fatal("non-deterministic decode size")
	}
	for k, v := range d1 {
		if d2[k] != v {
			t.Fatalf("non-deterministic estimate for %v: %d vs %d", k, v, d2[k])
		}
	}
}

func TestBasicEquivalentToUSSWhenDCoversAll(t *testing.T) {
	// With l=1, the d buckets are all buckets, so basic CocoSketch
	// degenerates to USS semantics: scan-all-min. Here just check the
	// structural invariant that exactly one bucket absorbs each packet.
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 4, BucketsPerArray: 1, Seed: 3})
	var total uint64
	rng := xrand.New(1)
	for i := 0; i < 1000; i++ {
		w := rng.Uint64n(9) + 1
		s.Insert(tuple(uint32(rng.Uint64n(50)), 1), w)
		total += w
	}
	if s.SumValues() != total {
		t.Fatalf("sum %d != %d", s.SumValues(), total)
	}
}

func TestQueryMeanVsMedian(t *testing.T) {
	pkts := stream(40, 30000, 17)
	s := NewHardware[flowkey.FiveTuple](Config{Arrays: 3, BucketsPerArray: 64, Seed: 5})
	for _, p := range pkts {
		s.Insert(p, 1)
	}
	truth := trueCounts(pkts)
	// Both combiners must be within a factor of 2 on the top flow.
	top := tuple(0xC0000000, 1000)
	want := float64(truth[top])
	med, mean := float64(s.Query(top)), float64(s.QueryMean(top))
	if med < want/2 || med > want*2 {
		t.Errorf("median estimate %f vs true %f", med, want)
	}
	if mean < want/2 || mean > want*2 {
		t.Errorf("mean estimate %f vs true %f", mean, want)
	}
}

func BenchmarkBasicInsert(b *testing.B) {
	for _, d := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "d=1", 2: "d=2", 4: "d=4"}[d], func(b *testing.B) {
			s := NewBasicForMemory[flowkey.FiveTuple](d, 500*1024, 1)
			pkts := stream(10000, 1<<16, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Insert(pkts[i&(len(pkts)-1)], 1)
			}
		})
	}
}

func BenchmarkHardwareInsert(b *testing.B) {
	s := NewHardwareForMemory[flowkey.FiveTuple](2, 500*1024, 1)
	pkts := stream(10000, 1<<16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(pkts[i&(len(pkts)-1)], 1)
	}
}
