package core

import (
	"testing"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/xrand"
)

func TestWindowCoversLastEpochs(t *testing.T) {
	cfg := Config{Arrays: 2, BucketsPerArray: 256, Seed: 3}
	w := NewWindow(3, cfg)

	// Epoch 0: flow A. Epoch 1: flow B. Epoch 2: flow C.
	a, b, c := tuple(1, 1), tuple(2, 2), tuple(3, 3)
	w.Insert(a, 100)
	w.Rotate()
	w.Insert(b, 200)
	w.Rotate()
	w.Insert(c, 300)

	table, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if table[a] != 100 || table[b] != 200 || table[c] != 300 {
		t.Fatalf("window decode = %v", table)
	}

	// One more rotation expels epoch 0 (flow A).
	w.Rotate()
	w.Insert(tuple(4, 4), 400)
	table, err = w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if _, still := table[a]; still {
		t.Fatal("expired epoch still visible")
	}
	if table[b] != 200 || table[c] != 300 || table[tuple(4, 4)] != 400 {
		t.Fatalf("window decode after rotation = %v", table)
	}
	if w.Epoch() != 3 {
		t.Fatalf("epoch counter = %d", w.Epoch())
	}
}

func TestWindowConservation(t *testing.T) {
	cfg := Config{Arrays: 2, BucketsPerArray: 16, Seed: 9}
	w := NewWindow(4, cfg)
	rng := xrand.New(2)
	var inWindow uint64
	for e := 0; e < 4; e++ {
		for i := 0; i < 5000; i++ {
			wt := rng.Uint64n(5) + 1
			w.Insert(tuple(uint32(rng.Uint64n(200)), 1), wt)
			inWindow += wt
		}
		if e < 3 {
			w.Rotate()
		}
	}
	table, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, v := range table {
		sum += v
	}
	if sum != inWindow {
		t.Fatalf("window total = %d, want %d", sum, inWindow)
	}
}

func TestWindowEpochDecode(t *testing.T) {
	w := NewWindow(2, Config{Arrays: 1, BucketsPerArray: 64, Seed: 1})
	w.Insert(tuple(1, 1), 5)
	w.Rotate()
	w.Insert(tuple(2, 2), 7)
	cur := w.DecodeEpoch()
	if len(cur) != 1 || cur[tuple(2, 2)] != 7 {
		t.Fatalf("current epoch decode = %v", cur)
	}
}

func TestWindowPanicsOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-width window accepted")
		}
	}()
	NewWindow(0, Config{Arrays: 1, BucketsPerArray: 4, Seed: 1})
}

func TestWindowMemoryBytes(t *testing.T) {
	cfg := Config{Arrays: 2, BucketsPerArray: 64, Seed: 1}
	w := NewWindow(3, cfg)
	single := NewBasic[flowkey.FiveTuple](cfg).MemoryBytes()
	if got := w.MemoryBytes(); got != 3*single {
		t.Fatalf("window memory = %d, want %d", got, 3*single)
	}
}
