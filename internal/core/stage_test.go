package core

import (
	"bytes"
	"math/rand"
	"testing"

	"cocosketch/internal/flowkey"
)

// stageStream inserts n pseudo-random packets drawn from a skewed key
// population, so sketches carry realistic occupancy.
func stageStream(s *Basic[flowkey.FiveTuple], n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		s.Insert(tuple(uint32(rng.Intn(200)), uint16(rng.Intn(50))), uint64(1+rng.Intn(4)))
	}
}

func mustMarshal(t *testing.T, s *Basic[flowkey.FiveTuple]) []byte {
	t.Helper()
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestCloneIsDeepAndBitIdentical(t *testing.T) {
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 32, Seed: 7})
	stageStream(s, 5000, 1)

	c := s.Clone()
	if !bytes.Equal(mustMarshal(t, s), mustMarshal(t, c)) {
		t.Fatal("clone is not bit-identical to the original")
	}
	if c.RNGState() != s.RNGState() {
		t.Fatal("clone did not carry the RNG state")
	}

	// Mutating either side must not leak into the other.
	before := mustMarshal(t, c)
	stageStream(s, 1000, 2)
	if !bytes.Equal(before, mustMarshal(t, c)) {
		t.Fatal("mutating the original changed the clone")
	}
	stageStream(c, 1000, 3)
	afterOriginal := mustMarshal(t, s)
	stageStream(c, 1000, 4)
	if !bytes.Equal(afterOriginal, mustMarshal(t, s)) {
		t.Fatal("mutating the clone changed the original")
	}
}

func TestExtractStageGeometryAndConservation(t *testing.T) {
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 64, Seed: 11})
	stageStream(s, 20000, 5)
	fatBefore := mustMarshal(t, s)

	for _, factor := range []int{1, 2, 8} {
		stage, err := s.ExtractStage(factor)
		if err != nil {
			t.Fatalf("ExtractStage(%d): %v", factor, err)
		}
		if stage.Arrays() != 2 || stage.BucketsPerArray() != 64/factor {
			t.Fatalf("ExtractStage(%d): geometry %d×%d", factor, stage.Arrays(), stage.BucketsPerArray())
		}
		if stage.SumValues() != s.SumValues() {
			t.Fatalf("ExtractStage(%d): mass %d, fat has %d", factor, stage.SumValues(), s.SumValues())
		}
	}
	if !bytes.Equal(fatBefore, mustMarshal(t, s)) {
		t.Fatal("ExtractStage mutated the fat sketch")
	}

	if _, err := s.ExtractStage(3); err == nil {
		t.Fatal("ExtractStage(3) accepted a non-power-of-two factor")
	}
	if _, err := s.ExtractStage(128); err == nil {
		t.Fatal("ExtractStage(128) accepted a factor exceeding the geometry")
	}
}

// TestOccupiedBucketsSelfAddressing pins the invariant the report
// decoder's invertibility check relies on: in any sketch — including
// one compressed to a smaller stage — every occupied bucket holds a
// key that hashes to exactly that bucket in its array.
func TestOccupiedBucketsSelfAddressing(t *testing.T) {
	for _, factor := range []int{1, 2, 4} {
		s := NewBasic[flowkey.FiveTuple](Config{Arrays: 3, BucketsPerArray: 32, Seed: 13})
		stageStream(s, 30000, 6)
		stage, err := s.ExtractStage(factor)
		if err != nil {
			t.Fatal(err)
		}
		d, l := stage.Arrays(), stage.BucketsPerArray()
		buckets := stage.Buckets()
		for i := 0; i < d; i++ {
			for j := 0; j < l; j++ {
				b := buckets[i*l+j]
				if b.Val == 0 {
					continue
				}
				if got := stage.BucketIndices(b.Key)[i]; int(got) != j {
					t.Fatalf("factor %d: bucket (%d,%d) holds a key hashing to %d", factor, i, j, got)
				}
			}
		}
	}
}

func TestMarshaledSizeMatchesMarshalBinary(t *testing.T) {
	for _, cfg := range []Config{
		{Arrays: 2, BucketsPerArray: 64, Seed: 1},
		{Arrays: 3, BucketsPerArray: 17, Seed: 2},
	} {
		s := NewBasic[flowkey.FiveTuple](cfg)
		stageStream(s, 1000, 7)
		if got, want := s.MarshaledSize(), len(mustMarshal(t, s)); got != want {
			t.Fatalf("MarshaledSize() = %d, MarshalBinary is %d bytes", got, want)
		}
	}
}

// TestSetRNGStateResumesSequence: restoring a captured state makes two
// sketches with identical buckets evolve identically — the property
// that lets a reconstructed stage continue exactly where the shipped
// one stopped.
func TestSetRNGStateResumesSequence(t *testing.T) {
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 16, Seed: 3})
	stageStream(s, 4000, 8)

	c := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 16, Seed: 3})
	if err := c.Merge(s); err != nil { // empty-merge copies buckets, no RNG draws
		t.Fatal(err)
	}
	c.SetRNGState(s.RNGState())

	stageStream(s, 4000, 9)
	stageStream(c, 4000, 9)
	if !bytes.Equal(mustMarshal(t, s), mustMarshal(t, c)) {
		t.Fatal("restored RNG state did not reproduce the insertion sequence")
	}
}
