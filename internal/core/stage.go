package core

import (
	"fmt"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/sketch"
	"cocosketch/internal/xrand"
)

// Stage hooks: the accessors a report codec (internal/report) needs to
// extract a compact "small stage" from an epoch sketch and to rebuild
// one, bucket by bucket, on the collector. The paper's netwide story
// (§5) ships whole sketches; SF-sketch's two-stage split keeps the fat
// stage local and ships a shrunken stage instead, and an invertible
// decode recovers the keys from a per-epoch dictionary by re-hashing —
// both need positional access to bucket state, which the serialization
// code keeps private. StageView is that access, deliberately read-
// mostly: the only mutating hooks (SetRNGState, Buckets on a fresh
// sketch) exist so a decoder can reconstruct a stage that is
// bit-identical to the one the agent extracted.

// StageView is the positional view of sketch state a report codec
// encodes from and reconstructs into. Both sketch variants implement
// it; internal/report is written against this interface so codecs
// never reach into sketch internals.
type StageView[K flowkey.Key] interface {
	// Arrays returns d, the number of bucket arrays.
	Arrays() int
	// BucketsPerArray returns l for this stage's geometry.
	BucketsPerArray() int
	// Buckets returns the flat row-major d×l bucket slice (bucket
	// (i,j) at i·l+j). Callers must treat the slice as read-only
	// except when reconstructing a freshly constructed, never-inserted
	// sketch on the decode path.
	Buckets() []Bucket[K]
	// RNGState returns the replacement-draw RNG state, so a
	// reconstructed stage continues the exact deterministic sequence.
	RNGState() uint64
	// SetRNGState restores a previously captured RNG state.
	SetRNGState(state uint64)
	// BucketIndices returns the d bucket indices key hashes to in this
	// geometry, one per array. The returned slice is a shared internal
	// buffer, valid until the next call on the same sketch — the
	// invertible-decode hook: a decoder re-hashes each dictionary key
	// and verifies the bucket it claims is one of these candidates.
	BucketIndices(key K) []uint32
	// SumValues returns the total of all bucket counters.
	SumValues() uint64
}

// Buckets returns the flat row-major bucket slice; see
// StageView.Buckets for the read-only contract.
func (t *table[K]) Buckets() []Bucket[K] { return t.buckets }

// RNGState returns the replacement-draw RNG state.
func (t *table[K]) RNGState() uint64 { return t.rng.State() }

// SetRNGState restores a replacement-draw RNG state.
func (t *table[K]) SetRNGState(state uint64) { t.rng.SetState(state) }

// BucketIndices returns the d bucket indices key hashes to; the slice
// is the sketch's shared hash buffer (valid until the next hashing
// call on this sketch).
func (t *table[K]) BucketIndices(key K) []uint32 { return t.hashIndices(key) }

// cloneTable deep-copies the bucket array, seeds and RNG state. The
// telemetry hooks are deliberately not copied: a clone is a private
// snapshot (a report stage, a spool entry), not a second live ingest
// path.
func (t *table[K]) cloneTable() table[K] {
	c := table[K]{
		d:       t.d,
		l:       t.l,
		seeds:   append([]uint32(nil), t.seeds...),
		buckets: append([]Bucket[K](nil), t.buckets...),
		rng:     xrand.New(0),
		hbuf:    make([]uint32, t.d),
	}
	c.rng.SetState(t.rng.State())
	return c
}

// Clone returns a deep copy of the sketch: same geometry, seeds,
// bucket contents and RNG state, sharing no mutable state with s.
// Telemetry hooks are not carried over.
func (s *Basic[K]) Clone() *Basic[K] {
	return &Basic[K]{table: s.cloneTable()}
}

// Clone returns a deep copy of the hardware-friendly sketch; the
// divider (a stateless strategy) is shared.
func (s *Hardware[K]) Clone() *Hardware[K] {
	return &Hardware[K]{table: s.cloneTable(), divider: s.divider}
}

// ExtractStage returns the "small stage" of s for a report: a deep
// copy compressed to 1/factor of the buckets per array (factor must be
// a power of two dividing l; factor 1 is a plain clone). The receiver
// — the fat stage — is untouched, so it can stay on the agent for
// local full-resolution queries while only the small stage ships.
// Compression merges bucket pairs with the estimate-preserving rule
// (see Compress), so the stage conserves SumValues exactly and its
// estimates remain unbiased with the variance of an l/factor sketch.
func (s *Basic[K]) ExtractStage(factor int) (*Basic[K], error) {
	stage := s.Clone()
	if err := stage.Compress(factor); err != nil {
		return nil, fmt.Errorf("core: extracting stage: %w", err)
	}
	return stage, nil
}

// MarshaledSize returns len(MarshalBinary()) without serializing —
// the byte cost a full-snapshot report of this sketch would put on the
// wire, used by report telemetry to compute compression ratios.
func (t *table[K]) MarshaledSize() int {
	const header = 4 + 1 + 1 + 4 + 4 + 2 + 8 // magic, version, variant, d, l, keySize, rngState
	return header + 4*t.d + t.d*t.l*(sketch.KeySize[K]()+8)
}
