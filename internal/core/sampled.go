package core

import (
	"math"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/xrand"
)

// Sampled wraps a CocoSketch with NitroSketch-style geometric packet
// sampling — the throughput extension §8 of the paper points to: only
// a p-fraction of packets touch the sketch, each carrying weight w/p,
// which keeps all estimates unbiased while cutting per-packet cost.
//
// The skip to the next sampled packet is drawn geometrically, so
// unsampled packets cost one decrement. Not safe for concurrent use.
type Sampled[K flowkey.Key] struct {
	inner interface {
		Insert(K, uint64)
	}
	rng  *xrand.Source
	pNum uint64 // sampling probability = pNum / pDen
	pDen uint64
	skip uint64 // packets to pass before the next sampled one
}

// NewSampled wraps inner (a *Basic or *Hardware) with sampling
// probability num/den. num must be in (0, den].
func NewSampled[K flowkey.Key](inner interface{ Insert(K, uint64) }, num, den uint64, seed uint64) *Sampled[K] {
	if num == 0 || den == 0 || num > den {
		panic("core: sampling probability must be in (0, 1]")
	}
	s := &Sampled[K]{inner: inner, rng: xrand.New(seed), pNum: num, pDen: den}
	s.skip = s.nextSkip()
	return s
}

// nextSkip draws a geometric gap: the number of unsampled packets
// before the next sampled one.
func (s *Sampled[K]) nextSkip() uint64 {
	if s.pNum == s.pDen {
		return 0
	}
	// Inverse-transform sampling of Geometric(p) via repeated
	// Bernoulli would be O(1/p); draw directly from the CDF instead:
	// skip = floor(ln(U) / ln(1-p)).
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	p := float64(s.pNum) / float64(s.pDen)
	k := int64(math.Log(u) / math.Log(1-p))
	if k < 0 {
		k = 0
	}
	return uint64(k)
}

// Insert processes one packet: most packets only decrement a counter;
// sampled packets update the sketch with weight scaled by 1/p.
func (s *Sampled[K]) Insert(key K, w uint64) {
	if w == 0 {
		return
	}
	if s.skip > 0 {
		s.skip--
		return
	}
	s.skip = s.nextSkip()
	// Scale the weight by den/num, rounding by randomized residue so
	// the expectation is exact.
	scaled := w * s.pDen / s.pNum
	if rem := w * s.pDen % s.pNum; rem != 0 && s.rng.Bernoulli(rem, s.pNum) {
		scaled++
	}
	s.inner.Insert(key, scaled)
}
