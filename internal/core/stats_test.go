package core

import (
	"testing"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/xrand"
)

func TestStatsEmpty(t *testing.T) {
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 8, Seed: 1})
	st := s.Stats()
	if st.Occupied != 0 || st.TotalWeight != 0 || st.MinValue != 0 || st.Occupancy() != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
	if st.Arrays != 2 || st.BucketsPerArray != 8 {
		t.Fatalf("geometry echo wrong: %+v", st)
	}
}

func TestStatsAfterInserts(t *testing.T) {
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 64, Seed: 1})
	s.Insert(tuple(1, 1), 10)
	s.Insert(tuple(2, 2), 30)
	st := s.Stats()
	if st.Occupied != 2 {
		t.Fatalf("occupied = %d", st.Occupied)
	}
	if st.TotalWeight != 40 || st.MinValue != 10 || st.MaxValue != 30 || st.MeanValue != 20 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Occupancy() != 2.0/128 {
		t.Fatalf("occupancy = %f", st.Occupancy())
	}
}

func TestStatsPerArrayHardware(t *testing.T) {
	s := NewHardware[flowkey.FiveTuple](Config{Arrays: 3, BucketsPerArray: 32, Seed: 2})
	rng := xrand.New(5)
	var total uint64
	for i := 0; i < 5000; i++ {
		w := rng.Uint64n(4) + 1
		s.Insert(tuple(uint32(rng.Uint64n(100)), 1), w)
		total += w
	}
	st := s.Stats()
	for i, w := range st.PerArrayWeight {
		if w != total {
			t.Fatalf("array %d weight = %d, want %d (hardware conserves per array)", i, w, total)
		}
	}
}

func TestStatsSaturationSignal(t *testing.T) {
	// A sketch with far more flows than buckets approaches full
	// occupancy — the operator's under-provisioning signal.
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 16, Seed: 3})
	rng := xrand.New(9)
	for i := 0; i < 50000; i++ {
		s.Insert(tuple(uint32(rng.Uint64n(10000)), 1), 1)
	}
	if occ := s.Stats().Occupancy(); occ < 0.95 {
		t.Fatalf("overloaded sketch occupancy %.2f, want ≈1", occ)
	}
}
