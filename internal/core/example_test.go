package core_test

import (
	"fmt"
	"sort"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
)

// Example shows the minimal CocoSketch lifecycle: one sketch on the
// full key, per-packet inserts, decode, and a partial-key aggregation.
func Example() {
	sk := core.NewBasic[flowkey.FiveTuple](core.Config{
		Arrays: 2, BucketsPerArray: 1024, Seed: 42,
	})

	flows := []struct {
		key     flowkey.FiveTuple
		packets int
	}{
		{flowkey.FiveTuple{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 9}, SrcPort: 1111, DstPort: 80, Proto: 6}, 500},
		{flowkey.FiveTuple{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 9}, SrcPort: 2222, DstPort: 443, Proto: 6}, 300},
		{flowkey.FiveTuple{SrcIP: [4]byte{10, 0, 0, 2}, DstIP: [4]byte{10, 0, 0, 9}, SrcPort: 3333, DstPort: 80, Proto: 6}, 100},
	}
	for _, f := range flows {
		for i := 0; i < f.packets; i++ {
			sk.Insert(f.key, 1)
		}
	}

	// Partial key "SrcIP": aggregate the decoded full-key table.
	bySrc := map[string]uint64{}
	for k, v := range sk.Decode() {
		bySrc[flowkey.IPv4(k.SrcIP).String()] += v
	}
	keys := make([]string, 0, len(bySrc))
	for k := range bySrc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s %d\n", k, bySrc[k])
	}
	// Output:
	// 10.0.0.1 800
	// 10.0.0.2 100
}

// ExampleBasic_Merge combines two measurement shards (e.g. from two
// dataplane threads) without losing estimate quality.
func ExampleBasic_Merge() {
	cfg := core.Config{Arrays: 2, BucketsPerArray: 512, Seed: 7}
	a := core.NewBasic[flowkey.FiveTuple](cfg)
	b := core.NewBasic[flowkey.FiveTuple](cfg)

	k := flowkey.FiveTuple{SrcIP: [4]byte{1, 1, 1, 1}, Proto: 6}
	a.Insert(k, 40)
	b.Insert(k, 60)

	if err := a.Merge(b); err != nil {
		panic(err)
	}
	fmt.Println(a.Query(k))
	// Output: 100
}

// ExampleUnmarshalBasic ships a sketch across a process boundary.
func ExampleUnmarshalBasic() {
	sk := core.NewBasic[flowkey.FiveTuple](core.Config{Arrays: 2, BucketsPerArray: 64, Seed: 1})
	k := flowkey.FiveTuple{SrcIP: [4]byte{9, 9, 9, 9}, Proto: 17}
	sk.Insert(k, 12345)

	blob, _ := sk.MarshalBinary()
	restored, err := core.UnmarshalBasic(blob, flowkey.FiveTupleFromBytes)
	if err != nil {
		panic(err)
	}
	fmt.Println(restored.Query(k))
	// Output: 12345
}
