package core

import (
	"math"
	"testing"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/xrand"
)

// The merge path is load-bearing for internal/shard: every Decode of a
// sharded engine folds N per-worker sketches into a fresh one, so the
// tests below pin merge behaviour for every bucket-occupancy mix the
// shards can present — empty vs empty, filled vs empty, empty vs
// filled, same key, and conflicting keys.

// fillDisjoint inserts n flows drawn from [base, base+universe) so two
// sketches can be given overlapping or disjoint key populations.
func fillDisjoint(s *Basic[flowkey.FiveTuple], rng *xrand.Source, base, universe uint32, n int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		w := rng.Uint64n(7) + 1
		s.Insert(tuple(base+uint32(rng.Uint64n(uint64(universe))), 80), w)
		total += w
	}
	return total
}

// TestMergeIntoEmptyCopiesVerbatim: folding a shard into a fresh empty
// sketch must reproduce the shard bucket-for-bucket and must consume
// no randomness — this is exactly how shard.Engine builds its decode
// view, and it is what makes the 1-worker engine bit-identical to the
// sequential path.
func TestMergeIntoEmptyCopiesVerbatim(t *testing.T) {
	cfg := Config{Arrays: 2, BucketsPerArray: 16, Seed: 3}
	src := NewBasic[flowkey.FiveTuple](cfg)
	fillDisjoint(src, xrand.New(1), 0, 200, 5000)

	dst := NewBasic[flowkey.FiveTuple](cfg)
	rngBefore := dst.rng.State()
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	if dst.rng.State() != rngBefore {
		t.Fatal("merging into an empty sketch consumed randomness")
	}
	for i := range dst.buckets {
		if dst.buckets[i] != src.buckets[i] {
			t.Fatalf("bucket %d differs after merge into empty: %+v vs %+v",
				i, dst.buckets[i], src.buckets[i])
		}
	}
}

// TestMergeEmptyOtherIsNoop: a worker that saw no traffic must not
// perturb the merged state (occupancy mix: filled vs empty).
func TestMergeEmptyOtherIsNoop(t *testing.T) {
	cfg := Config{Arrays: 2, BucketsPerArray: 16, Seed: 3}
	a := NewBasic[flowkey.FiveTuple](cfg)
	fillDisjoint(a, xrand.New(2), 0, 200, 5000)
	before := make([]Bucket[flowkey.FiveTuple], len(a.buckets))
	copy(before, a.buckets)
	rngBefore := a.rng.State()

	if err := a.Merge(NewBasic[flowkey.FiveTuple](cfg)); err != nil {
		t.Fatal(err)
	}
	if a.rng.State() != rngBefore {
		t.Fatal("merging an empty sketch consumed randomness")
	}
	for i := range a.buckets {
		if a.buckets[i] != before[i] {
			t.Fatalf("bucket %d changed when merging an empty shard", i)
		}
	}
}

// TestMergeMixedOccupancyInvariants drives merges between partially
// filled shards (so every slot pairing occurs: empty-empty, one-sided,
// same-key, conflicting-key) and checks the per-bucket invariants:
// values add, and the surviving key comes from one of the two inputs —
// from the non-empty side when only one side is occupied.
func TestMergeMixedOccupancyInvariants(t *testing.T) {
	cfg := Config{Arrays: 2, BucketsPerArray: 64, Seed: 11}
	for trial := 0; trial < 8; trial++ {
		a := NewBasic[flowkey.FiveTuple](cfg)
		b := NewBasic[flowkey.FiveTuple](cfg)
		a.Reseed(uint64(trial)*2 + 1)
		b.Reseed(uint64(trial)*2 + 2)
		rng := xrand.New(uint64(trial) + 100)
		// Sparse fills of different sizes leave many empty buckets on
		// both sides; the overlapping universe [500,700) forces both
		// same-key and conflicting-key collisions.
		fillDisjoint(a, rng, 0, 300, 40*(trial+1))
		fillDisjoint(b, rng, 500, 200, 25*(trial+1))
		fillDisjoint(a, rng, 500, 200, 10*(trial+1))

		av := make([]Bucket[flowkey.FiveTuple], len(a.buckets))
		copy(av, a.buckets)
		bv := b.buckets
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		for i := range a.buckets {
			got, x, y := a.buckets[i], av[i], bv[i]
			if got.Val != x.Val+y.Val {
				t.Fatalf("trial %d bucket %d: val %d, want %d+%d", trial, i, got.Val, x.Val, y.Val)
			}
			switch {
			case x.Val == 0 && y.Val == 0:
				if got != (Bucket[flowkey.FiveTuple]{}) {
					t.Fatalf("trial %d bucket %d: empty+empty produced %+v", trial, i, got)
				}
			case x.Val == 0:
				if got.Key != y.Key {
					t.Fatalf("trial %d bucket %d: empty+filled kept wrong key", trial, i)
				}
			case y.Val == 0:
				if got.Key != x.Key {
					t.Fatalf("trial %d bucket %d: filled+empty kept wrong key", trial, i)
				}
			default:
				if got.Key != x.Key && got.Key != y.Key {
					t.Fatalf("trial %d bucket %d: merged key %v from neither input", trial, i, got.Key)
				}
				if x.Key == y.Key && got.Key != x.Key {
					t.Fatalf("trial %d bucket %d: same-key merge replaced the key", trial, i)
				}
			}
		}
	}
}

// TestMergeConflictProbability pins the conflicting-key rule: the
// surviving key is chosen with probability proportional to its mass
// (the stochastic variance minimization rule applied to the
// aggregate). With masses 3w vs w, the lighter key must win ~1/4 of
// the time.
func TestMergeConflictProbability(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const trials = 4000
	keyA, keyB := tuple(1, 1), tuple(2, 2)
	wins := 0
	for trial := 0; trial < trials; trial++ {
		tb := newTable[flowkey.FiveTuple](Config{Arrays: 1, BucketsPerArray: 1, Seed: uint64(trial)})
		a := Bucket[flowkey.FiveTuple]{Key: keyA, Val: 300}
		b := Bucket[flowkey.FiveTuple]{Key: keyB, Val: 100}
		mergeBuckets(&tb, &a, &b)
		if a.Val != 400 {
			t.Fatalf("conflict merge lost mass: %d", a.Val)
		}
		if a.Key == keyB {
			wins++
		}
	}
	p := float64(wins) / trials
	if math.Abs(p-0.25) > 0.03 {
		t.Fatalf("lighter key survived with probability %.3f, want ~0.25", p)
	}
}

// TestMergeHardwareMixedOccupancy: the hardware variant shares the
// table-level merge; check conservation and decode sanity across
// partially filled shards (each array independently conserves the
// inserted weight, so totals add across shards too).
func TestMergeHardwareMixedOccupancy(t *testing.T) {
	cfg := Config{Arrays: 2, BucketsPerArray: 32, Seed: 13}
	a := NewHardware[flowkey.FiveTuple](cfg)
	b := NewHardware[flowkey.FiveTuple](cfg)
	b.Reseed(99)
	rng := xrand.New(17)
	var total uint64
	for i := 0; i < 12000; i++ {
		w := rng.Uint64n(5) + 1
		k := tuple(uint32(rng.Uint64n(150)), 443)
		if rng.Uint64n(3) == 0 { // uneven split: b stays sparser than a
			b.Insert(k, w)
		} else {
			a.Insert(k, w)
		}
		total += w
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Each of the d arrays absorbs every insert once in the hardware
	// variant, so the merged total is d times the stream weight.
	if got := a.SumValues(); got != uint64(cfg.Arrays)*total {
		t.Fatalf("merged hardware sum = %d, want %d", got, uint64(cfg.Arrays)*total)
	}
	for k, v := range a.Decode() {
		if v == 0 {
			t.Fatalf("decoded zero estimate for %v", k)
		}
	}
}

// TestCompatibleMirrorsMergePrecondition: Compatible must say yes
// exactly when Merge would succeed — same geometry and seeds pass,
// any difference in arrays, buckets or seed fails, and the verdict
// matches what Merge actually does.
func TestCompatibleMirrorsMergePrecondition(t *testing.T) {
	base := Config{Arrays: 2, BucketsPerArray: 64, Seed: 9}
	cases := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"identical", base, true},
		{"arrays", Config{Arrays: 3, BucketsPerArray: 64, Seed: 9}, false},
		{"buckets", Config{Arrays: 2, BucketsPerArray: 32, Seed: 9}, false},
		{"seed", Config{Arrays: 2, BucketsPerArray: 64, Seed: 10}, false},
	}
	a := NewBasic[flowkey.FiveTuple](base)
	ha := NewHardware[flowkey.FiveTuple](base)
	for _, tc := range cases {
		b := NewBasic[flowkey.FiveTuple](tc.cfg)
		if got := a.Compatible(b); got != tc.want {
			t.Errorf("%s: Compatible = %v, want %v", tc.name, got, tc.want)
		}
		if err := a.Clone().Merge(b); (err == nil) != tc.want {
			t.Errorf("%s: Merge error %v disagrees with Compatible %v", tc.name, err, tc.want)
		}
		hb := NewHardware[flowkey.FiveTuple](tc.cfg)
		if got := ha.Compatible(hb); got != tc.want {
			t.Errorf("%s: Hardware Compatible = %v, want %v", tc.name, got, tc.want)
		}
	}
}
