package core

import (
	"sync"
	"testing"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/xrand"
)

func TestConcurrentParallelInserts(t *testing.T) {
	c := NewConcurrent[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 256, Seed: 1})
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			rng := xrand.New(uint64(id))
			for i := 0; i < perWorker; i++ {
				c.Insert(tuple(uint32(rng.Uint64n(100)), 80), 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.SumValues(); got != workers*perWorker {
		t.Fatalf("sum = %d, want %d (weight conservation under concurrency)", got, workers*perWorker)
	}
	var decTotal uint64
	for _, v := range c.Decode() {
		decTotal += v
	}
	if decTotal != workers*perWorker {
		t.Fatalf("decode total = %d", decTotal)
	}
}

func TestConcurrentQueryDuringInserts(t *testing.T) {
	c := NewConcurrent[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 256, Seed: 2})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				c.Insert(tuple(uint32(i%50), 1), 1)
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = c.Query(tuple(uint32(i%50), 1))
		_ = c.MemoryBytes()
	}
	close(stop)
	wg.Wait()
	if c.Name() != "CocoSketch-locked" {
		t.Fatalf("Name = %q", c.Name())
	}
}
