package core

import (
	"testing"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/xrand"
)

func TestPlanAccuracyGeometry(t *testing.T) {
	cfg, err := PlanAccuracy(0.5, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BucketsPerArray != 12 { // ceil(3/0.25)
		t.Fatalf("l = %d, want 12", cfg.BucketsPerArray)
	}
	if cfg.Arrays != 3 { // ceil(ln 20) = 3
		t.Fatalf("d = %d, want 3", cfg.Arrays)
	}
}

func TestPlanAccuracyRejects(t *testing.T) {
	for _, pair := range [][2]float64{{0, 0.1}, {1.5, 0.1}, {0.5, 0}, {0.5, 1}} {
		if _, err := PlanAccuracy(pair[0], pair[1], 1); err == nil {
			t.Errorf("PlanAccuracy(%v, %v) accepted", pair[0], pair[1])
		}
	}
}

func TestPlanRecallPaperExample(t *testing.T) {
	// §5.3: 99% recall on 1% heavy hitters with d = 2 needs l = 900.
	cfg, err := PlanRecall(0.01, 0.99, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Arrays != 2 {
		t.Fatalf("d = %d", cfg.Arrays)
	}
	if cfg.BucketsPerArray < 850 || cfg.BucketsPerArray > 950 {
		t.Fatalf("l = %d, want about 900 (paper §5.3)", cfg.BucketsPerArray)
	}
}

func TestPlanRecallDelivers(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// Empirically verify the planned geometry hits its recall target.
	cfg, err := PlanRecall(0.01, 0.99, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 150
	recorded := 0
	heavy := tuple(0xbeef, 1)
	for trial := 0; trial < trials; trial++ {
		cfg.Seed = uint64(trial)
		s := NewHardware[flowkey.FiveTuple](cfg)
		rng := xrand.New(uint64(trial)*5 + 2)
		for i := 0; i < 60000; i++ {
			if rng.Uint64n(100) == 0 {
				s.Insert(heavy, 1)
			} else {
				s.Insert(tuple(uint32(rng.Uint64n(30000)), 2), 1)
			}
		}
		if s.Query(heavy) > 0 {
			recorded++
		}
	}
	if rate := float64(recorded) / trials; rate < 0.97 {
		t.Fatalf("planned recall %.3f, target 0.99", rate)
	}
}

func TestPlanRecallRejects(t *testing.T) {
	if _, err := PlanRecall(0, 0.9, 2, 1); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, err := PlanRecall(0.01, 1, 2, 1); err == nil {
		t.Error("recall 1 accepted")
	}
	if _, err := PlanRecall(0.01, 0.9, 0, 1); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestMemoryForConfig(t *testing.T) {
	cfg := Config{Arrays: 2, BucketsPerArray: 100}
	want := 2 * 100 * (13 + 8)
	if got := MemoryForConfig[flowkey.FiveTuple](cfg); got != want {
		t.Fatalf("memory = %d, want %d", got, want)
	}
}
