package core

import (
	"testing"

	"cocosketch/internal/flowkey"
)

// FuzzUnmarshalBasic feeds arbitrary bytes to the sketch deserializer:
// it must reject garbage with an error, never panic, and round-trip
// its own output.
func FuzzUnmarshalBasic(f *testing.F) {
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 4, Seed: 1})
	s.Insert(tuple(1, 2), 3)
	blob, _ := s.MarshalBinary()
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte{})
	mutated := append([]byte{}, blob...)
	mutated[8] ^= 0x40
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := UnmarshalBasic(data, flowkey.FiveTupleFromBytes)
		if err != nil {
			return
		}
		// Anything accepted must re-marshal to an equivalent sketch.
		blob2, err := back.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		again, err := UnmarshalBasic(blob2, flowkey.FiveTupleFromBytes)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		d1, d2 := back.Decode(), again.Decode()
		if len(d1) != len(d2) {
			t.Fatalf("re-marshal changed decode: %d vs %d", len(d1), len(d2))
		}
	})
}

// FuzzParseMask hits the mask grammar with arbitrary strings.
func FuzzParseMask(f *testing.F) {
	for _, s := range []string{"SrcIP", "SrcIP/24+DstIP", "5-tuple", "", "a+b", "SrcIP/99"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := flowkey.ParseMask(s)
		if err != nil {
			return
		}
		// Accepted masks must round-trip through their string form.
		back, err := flowkey.ParseMask(m.String())
		if err != nil {
			t.Fatalf("mask %v string %q does not re-parse: %v", m, m.String(), err)
		}
		if back != m {
			t.Fatalf("round trip changed mask: %v -> %v", m, back)
		}
	})
}
