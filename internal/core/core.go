// Package core implements CocoSketch, the paper's primary contribution:
// a single d×l array of (full key, value) buckets answering flow-size
// queries for arbitrary partial keys with unbiased, variance-minimized
// estimates.
//
// Two variants are provided, matching §4 of the paper:
//
//   - Basic (software platforms, §4.1): per packet, stochastic variance
//     minimization over the d hashed buckets — increment a matching
//     bucket, else increment the minimum bucket and replace its key with
//     probability w/V.
//   - Hardware (RMT/FPGA, §4.2): the d arrays update independently
//     (circular dependencies removed); queries take the median of the
//     per-array estimates.
//
// Neither variant is safe for concurrent use; shard per goroutine (see
// package ovs) for multi-threaded pipelines.
package core

import (
	"cocosketch/internal/flowkey"
	"cocosketch/internal/sketch"
	"cocosketch/internal/telemetry"
	"cocosketch/internal/xrand"
)

// Bucket is one (key, value) slot. Value==0 means the slot is empty.
type Bucket[K flowkey.Key] struct {
	Key K
	Val uint64
}

// Config parameterizes a CocoSketch.
type Config struct {
	// Arrays is d, the number of bucket arrays (hash functions).
	// The paper's default is 2.
	Arrays int
	// BucketsPerArray is l. Total buckets M = Arrays × BucketsPerArray.
	BucketsPerArray int
	// Seed makes hash functions and replacement draws reproducible.
	Seed uint64
}

// DefaultArrays is the paper's default d.
const DefaultArrays = 2

// BucketBytes returns the per-bucket memory charge for key type K:
// key bytes plus an 8-byte counter, as in the paper's accounting.
func BucketBytes[K flowkey.Key]() int { return sketch.KeySize[K]() + 8 }

// ConfigForMemory returns a Config with d arrays fitting a total memory
// budget for key type K. At least one bucket per array is allocated.
func ConfigForMemory[K flowkey.Key](d, memoryBytes int, seed uint64) Config {
	if d <= 0 {
		panic("core: Arrays must be positive")
	}
	l := memoryBytes / (d * BucketBytes[K]())
	if l < 1 {
		l = 1
	}
	return Config{Arrays: d, BucketsPerArray: l, Seed: seed}
}

// table holds the state shared by both variants. Buckets live in one
// contiguous slice (bucket (i,j) of the logical d×l grid is at i·l+j)
// so the per-packet walk over the d arrays touches memory behind a
// single base pointer instead of chasing d slice headers.
type table[K flowkey.Key] struct {
	d, l    int
	seeds   []uint32
	buckets []Bucket[K]
	rng     *xrand.Source
	// hbuf is the per-insert scratch for encode-once hashing (len d).
	// Sketches are single-goroutine (see package comment), so one
	// buffer per table keeps every insert and query allocation-free.
	hbuf []uint32
	// idxbuf holds precomputed bucket indices for InsertBatch, d per
	// packet; it grows to one chunk and is reused.
	idxbuf []uint32
	// ops tracks update outcomes with plain single-writer counts;
	// tel/telBase flush them as atomic deltas (see telemetry.go).
	ops     opCounts
	tel     *telemetry.SketchMetrics
	telBase opCounts
}

func newTable[K flowkey.Key](cfg Config) table[K] {
	if cfg.Arrays <= 0 || cfg.BucketsPerArray <= 0 {
		panic("core: Arrays and BucketsPerArray must be positive")
	}
	seeds := make([]uint32, cfg.Arrays)
	sr := xrand.New(cfg.Seed ^ 0xc0c0c0c0)
	for i := range seeds {
		seeds[i] = uint32(sr.Uint64())
	}
	return table[K]{
		d:       cfg.Arrays,
		l:       cfg.BucketsPerArray,
		seeds:   seeds,
		buckets: make([]Bucket[K], cfg.Arrays*cfg.BucketsPerArray),
		rng:     xrand.New(cfg.Seed),
		hbuf:    make([]uint32, cfg.Arrays),
	}
}

// index maps a hash to a bucket index without division (multiply-shift
// range reduction).
func (t *table[K]) index(h uint32) int {
	return int((uint64(h) * uint64(t.l)) >> 32)
}

// hashIndices fills t.hbuf with the d bucket indices of key, encoding
// the key once for all seeds, and returns the buffer.
func (t *table[K]) hashIndices(key K) []uint32 {
	hs := t.hbuf
	key.HashSeeds(t.seeds, hs)
	for i, h := range hs {
		hs[i] = uint32(t.index(h))
	}
	return hs
}

// insertBatchChunk bounds the index buffer used by InsertBatch: packets
// are processed in chunks, hashing a whole chunk before touching any
// bucket so the hash and update phases each stay in their own working
// set (DPDK-style burst processing).
const insertBatchChunk = 256

// batchIndices hashes keys (one encode per key) and returns the flat
// d-per-packet bucket index buffer.
func (t *table[K]) batchIndices(keys []K) []uint32 {
	need := len(keys) * t.d
	if cap(t.idxbuf) < need {
		t.idxbuf = make([]uint32, need)
	}
	idx := t.idxbuf[:need]
	for p := range keys {
		row := idx[p*t.d : (p+1)*t.d]
		keys[p].HashSeeds(t.seeds, row)
		for i, h := range row {
			row[i] = uint32(t.index(h))
		}
	}
	return idx
}

// MemoryBytes reports d·l buckets at BucketBytes each.
func (t *table[K]) MemoryBytes() int {
	return t.d * t.l * BucketBytes[K]()
}

// Arrays returns d.
func (t *table[K]) Arrays() int { return t.d }

// BucketsPerArray returns l.
func (t *table[K]) BucketsPerArray() int { return t.l }

// reseedRNG replaces the replacement-draw random source. Hash seeds
// are untouched, so sketches stay merge-compatible: shard.Engine uses
// this to decorrelate the replacement draws of per-worker sketches
// that must share one Config (and therefore one Config.Seed).
func (t *table[K]) reseedRNG(seed uint64) { t.rng = xrand.New(seed) }

// sumValues returns the sum of all bucket counters (used by invariant
// tests: insertion conserves total weight).
func (t *table[K]) sumValues() uint64 {
	var sum uint64
	for i := range t.buckets {
		sum += t.buckets[i].Val
	}
	return sum
}

// Basic is the software variant (§4.1).
type Basic[K flowkey.Key] struct {
	table[K]
}

// NewBasic constructs a basic CocoSketch.
func NewBasic[K flowkey.Key](cfg Config) *Basic[K] {
	return &Basic[K]{table: newTable[K](cfg)}
}

// NewBasicForMemory constructs a basic CocoSketch with d arrays within a
// memory budget.
func NewBasicForMemory[K flowkey.Key](d, memoryBytes int, seed uint64) *Basic[K] {
	return NewBasic[K](ConfigForMemory[K](d, memoryBytes, seed))
}

// Name implements sketch.Sketch.
func (s *Basic[K]) Name() string { return "CocoSketch" }

// Insert applies stochastic variance minimization to one packet (e, w).
func (s *Basic[K]) Insert(key K, w uint64) {
	if w == 0 {
		return
	}
	s.insertAt(key, w, s.hashIndices(key))
	s.flushTel()
}

// insertAt runs the update with the d bucket indices already computed.
// The control flow (and therefore the RNG draw sequence) is identical
// to the pre-batching per-packet path, which the equivalence tests pin.
func (s *Basic[K]) insertAt(key K, w uint64, idx []uint32) {
	// Pass 1: a matching bucket absorbs the packet with zero variance
	// increment (Theorem 2). Track the minimum bucket along the way,
	// breaking ties uniformly at random (paper §4.1).
	buckets := s.buckets
	minVal := ^uint64(0)
	minPos := -1
	ties := 0
	base := 0
	for i := 0; i < s.d; i++ {
		pos := base + int(idx[i])
		b := &buckets[pos]
		if b.Val != 0 && b.Key == key {
			b.Val += w
			s.ops.matched++
			return
		}
		switch {
		case b.Val < minVal:
			minVal = b.Val
			minPos = pos
			ties = 1
		case b.Val == minVal:
			// Reservoir-sample among equal minima so each is
			// selected with probability 1/ties.
			ties++
			if s.rng.Uint64n(uint64(ties)) == 0 {
				minPos = pos
			}
		}
		base += s.l
	}
	// Pass 2: increment the minimum bucket and replace its key with
	// probability w / V_new (Theorem 1).
	b := &buckets[minPos]
	b.Val += w
	if s.rng.Bernoulli(w, b.Val) {
		b.Key = key
		s.ops.replaced++
	} else {
		s.ops.kept++
	}
}

// InsertBatch inserts keys[p] with weight ws[p] for every p, in order.
// The bucket state, decode output and RNG sequence are bit-identical
// to the equivalent sequence of Insert calls; the batch path only
// reorders the pure hashing work (all keys of a chunk are hashed
// before any bucket is touched), which amortizes bounds checks and
// keeps the two phases in separate working sets.
func (s *Basic[K]) InsertBatch(keys []K, ws []uint64) {
	if len(keys) != len(ws) {
		panic("core: InsertBatch length mismatch")
	}
	for off := 0; off < len(keys); off += insertBatchChunk {
		end := off + insertBatchChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		idx := s.batchIndices(chunk)
		for p := range chunk {
			if w := ws[off+p]; w != 0 {
				s.insertAt(chunk[p], w, idx[p*s.d:(p+1)*s.d])
			}
		}
	}
	s.flushTel()
}

// InsertBatchUnit inserts every key with weight 1 (the packet-count
// hot path of the OVS pipeline and the throughput experiments).
func (s *Basic[K]) InsertBatchUnit(keys []K) {
	for off := 0; off < len(keys); off += insertBatchChunk {
		end := off + insertBatchChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		idx := s.batchIndices(chunk)
		for p := range chunk {
			s.insertAt(chunk[p], 1, idx[p*s.d:(p+1)*s.d])
		}
	}
	s.flushTel()
}

// Reseed replaces the replacement-draw RNG without touching the hash
// seeds, so the sketch remains mergeable with others of the same
// Config. Shard engines call this so workers sharing a Config do not
// replay identical replacement-draw sequences.
func (s *Basic[K]) Reseed(seed uint64) { s.reseedRNG(seed) }

// Query returns the recorded estimate of a full-key flow, or 0 if the
// flow is not currently tracked.
func (s *Basic[K]) Query(key K) uint64 {
	idx := s.hashIndices(key)
	base := 0
	for i := 0; i < s.d; i++ {
		b := &s.buckets[base+int(idx[i])]
		if b.Val != 0 && b.Key == key {
			return b.Val
		}
		base += s.l
	}
	return 0
}

// Decode builds the full-key table (control-plane Step 3): every
// non-empty bucket contributes its (key, value) pair. A key can only
// occupy one bucket at a time in the basic variant, but duplicates are
// summed defensively.
func (s *Basic[K]) Decode() map[K]uint64 {
	out := make(map[K]uint64, s.d*s.l)
	for i := range s.buckets {
		if s.buckets[i].Val != 0 {
			out[s.buckets[i].Key] += s.buckets[i].Val
		}
	}
	return out
}

// SumValues exposes the total of all counters for invariant checks.
func (s *Basic[K]) SumValues() uint64 { return s.sumValues() }

// Hardware is the hardware-friendly variant (§4.2): each array runs an
// independent d=1 instance of stochastic variance minimization, so the
// update pipeline has no circular dependencies.
type Hardware[K flowkey.Key] struct {
	table[K]
	// divider computes the replacement decision. The exact divider
	// matches the FPGA implementation; an approximate divider models
	// the Tofino math unit (§6.2). See SetDivider.
	divider Divider
}

// Divider decides key replacement given (w, vNew) — it realizes the
// probability w/vNew. Exact division is the FPGA behaviour; the Tofino
// math unit approximates 2^32/vNew from the top 4 bits of vNew.
type Divider interface {
	// Replace reports whether the key should be replaced, drawing
	// randomness from rng.
	Replace(rng *xrand.Source, w, vNew uint64) bool
	Name() string
}

// ExactDivider draws with the exact probability w/vNew.
type ExactDivider struct{}

// Replace implements Divider.
func (ExactDivider) Replace(rng *xrand.Source, w, vNew uint64) bool {
	return rng.Bernoulli(w, vNew)
}

// Name implements Divider.
func (ExactDivider) Name() string { return "exact" }

// NewHardware constructs a hardware-friendly CocoSketch with exact
// division (FPGA behaviour).
func NewHardware[K flowkey.Key](cfg Config) *Hardware[K] {
	return &Hardware[K]{table: newTable[K](cfg), divider: ExactDivider{}}
}

// NewHardwareForMemory constructs a hardware-friendly CocoSketch within
// a memory budget.
func NewHardwareForMemory[K flowkey.Key](d, memoryBytes int, seed uint64) *Hardware[K] {
	return NewHardware[K](ConfigForMemory[K](d, memoryBytes, seed))
}

// SetDivider replaces the division strategy (e.g. rmt.ApproxDivider to
// model the Tofino math unit). It returns the sketch for chaining.
func (s *Hardware[K]) SetDivider(d Divider) *Hardware[K] {
	s.divider = d
	return s
}

// Name implements sketch.Sketch.
func (s *Hardware[K]) Name() string {
	if s.divider.Name() == "exact" {
		return "CocoSketch-HW"
	}
	return "CocoSketch-HW(" + s.divider.Name() + ")"
}

// Insert updates every array independently: always increment the mapped
// bucket; if its key differs, replace with probability w/V_new.
func (s *Hardware[K]) Insert(key K, w uint64) {
	if w == 0 {
		return
	}
	s.insertAt(key, w, s.hashIndices(key))
	s.flushTel()
}

// insertAt runs the update with the d bucket indices already computed;
// the RNG draw sequence matches the per-packet path exactly. Outcomes
// are counted per array (each of the d arrays updates independently).
func (s *Hardware[K]) insertAt(key K, w uint64, idx []uint32) {
	buckets := s.buckets
	base := 0
	for i := 0; i < s.d; i++ {
		b := &buckets[base+int(idx[i])]
		b.Val += w
		switch {
		case b.Key == key:
			s.ops.matched++
		case s.divider.Replace(s.rng, w, b.Val):
			b.Key = key
			s.ops.replaced++
		default:
			s.ops.kept++
		}
		base += s.l
	}
}

// InsertBatch inserts keys[p] with weight ws[p] for every p, in order,
// hashing each chunk before updating any bucket. State and RNG
// sequence are bit-identical to sequential Insert calls.
func (s *Hardware[K]) InsertBatch(keys []K, ws []uint64) {
	if len(keys) != len(ws) {
		panic("core: InsertBatch length mismatch")
	}
	for off := 0; off < len(keys); off += insertBatchChunk {
		end := off + insertBatchChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		idx := s.batchIndices(chunk)
		for p := range chunk {
			if w := ws[off+p]; w != 0 {
				s.insertAt(chunk[p], w, idx[p*s.d:(p+1)*s.d])
			}
		}
	}
	s.flushTel()
}

// InsertBatchUnit inserts every key with weight 1.
func (s *Hardware[K]) InsertBatchUnit(keys []K) {
	for off := 0; off < len(keys); off += insertBatchChunk {
		end := off + insertBatchChunk
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[off:end]
		idx := s.batchIndices(chunk)
		for p := range chunk {
			s.insertAt(chunk[p], 1, idx[p*s.d:(p+1)*s.d])
		}
	}
	s.flushTel()
}

// Reseed replaces the replacement-draw RNG without touching the hash
// seeds; see Basic.Reseed.
func (s *Hardware[K]) Reseed(seed uint64) { s.reseedRNG(seed) }

// Query returns the median of the per-array estimates, where an array
// not recording the flow contributes 0 (Theorem 3's estimator).
func (s *Hardware[K]) Query(key K) uint64 {
	var est [8]uint64 // d is small; avoid allocation for d <= 8
	vals := est[:0]
	if s.d > len(est) {
		vals = make([]uint64, 0, s.d)
	}
	idx := s.hashIndices(key)
	base := 0
	for i := 0; i < s.d; i++ {
		b := &s.buckets[base+int(idx[i])]
		if b.Val != 0 && b.Key == key {
			vals = append(vals, b.Val)
		} else {
			vals = append(vals, 0)
		}
		base += s.l
	}
	return median(vals)
}

// QueryMean is the ablation combiner: mean instead of median.
func (s *Hardware[K]) QueryMean(key K) uint64 {
	var sum uint64
	idx := s.hashIndices(key)
	base := 0
	for i := 0; i < s.d; i++ {
		b := &s.buckets[base+int(idx[i])]
		if b.Val != 0 && b.Key == key {
			sum += b.Val
		}
		base += s.l
	}
	return sum / uint64(s.d)
}

// Decode builds the full-key table: every distinct recorded key is
// re-queried so its estimate is the cross-array median.
func (s *Hardware[K]) Decode() map[K]uint64 {
	out := make(map[K]uint64, s.d*s.l)
	for i := range s.buckets {
		if s.buckets[i].Val == 0 {
			continue
		}
		k := s.buckets[i].Key
		if _, done := out[k]; !done {
			out[k] = s.Query(k)
		}
	}
	return out
}

// SumValues exposes the total of all counters; in the hardware variant
// every array independently conserves the inserted weight, so the total
// is d times the stream weight.
func (s *Hardware[K]) SumValues() uint64 { return s.sumValues() }

// median returns the middle value (mean of the two middles when even).
// It sorts in place; inputs are tiny (length d).
func median(v []uint64) uint64 {
	n := len(v)
	if n == 0 {
		return 0
	}
	// Insertion sort: d ≤ 8 in practice.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	if n%2 == 1 {
		return v[n/2]
	}
	a, b := v[n/2-1], v[n/2]
	return a + (b-a)/2
}
