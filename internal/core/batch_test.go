package core

import (
	"testing"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/trace"
)

// equalTables compares the full internal state of two tables: geometry,
// seeds, RNG state and every bucket. Bit-identical state is the
// contract that makes the batched insert path and the flat bucket
// layout safe refactors of the sequential path.
func equalTables[K flowkey.Key](t *testing.T, a, b *table[K]) {
	t.Helper()
	if a.d != b.d || a.l != b.l {
		t.Fatalf("geometry differs: %dx%d vs %dx%d", a.d, a.l, b.d, b.l)
	}
	for i := range a.seeds {
		if a.seeds[i] != b.seeds[i] {
			t.Fatalf("seed %d differs", i)
		}
	}
	if a.rng.State() != b.rng.State() {
		t.Fatalf("RNG state differs: %#x vs %#x (draw order changed)", a.rng.State(), b.rng.State())
	}
	for i := range a.buckets {
		if a.buckets[i] != b.buckets[i] {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, a.buckets[i], b.buckets[i])
		}
	}
}

func equalDecode[K flowkey.Key](t *testing.T, seq, batch map[K]uint64) {
	t.Helper()
	if len(seq) != len(batch) {
		t.Fatalf("decode sizes differ: %d vs %d", len(seq), len(batch))
	}
	for k, v := range seq {
		if batch[k] != v {
			t.Fatalf("decode differs for %v: %d vs %d", k, v, batch[k])
		}
	}
}

// batchStream builds a weighted packet stream with some zero weights
// mixed in (Insert must skip w=0 without consuming randomness, and
// InsertBatch must do the same).
func batchStream(n int) ([]flowkey.FiveTuple, []uint64) {
	tr := trace.CAIDALike(n, 5)
	keys := make([]flowkey.FiveTuple, n)
	ws := make([]uint64, n)
	for i := range tr.Packets {
		keys[i] = tr.Packets[i].Key
		ws[i] = uint64(i % 7) // includes zeros
	}
	return keys, ws
}

func TestBasicInsertBatchEquivalence(t *testing.T) {
	keys, ws := batchStream(60000)
	cfg := Config{Arrays: 3, BucketsPerArray: 997, Seed: 42}

	seq := NewBasic[flowkey.FiveTuple](cfg)
	for i := range keys {
		seq.Insert(keys[i], ws[i])
	}
	// One InsertBatch over the whole stream (multiple internal chunks).
	batch := NewBasic[flowkey.FiveTuple](cfg)
	batch.InsertBatch(keys, ws)
	equalTables(t, &seq.table, &batch.table)
	equalDecode(t, seq.Decode(), batch.Decode())
	if seq.SumValues() != batch.SumValues() {
		t.Fatalf("SumValues differ: %d vs %d", seq.SumValues(), batch.SumValues())
	}

	// Many small odd-sized batches must land on the same state too.
	ragged := NewBasic[flowkey.FiveTuple](cfg)
	for off := 0; off < len(keys); {
		end := off + 1 + (off % 123)
		if end > len(keys) {
			end = len(keys)
		}
		ragged.InsertBatch(keys[off:end], ws[off:end])
		off = end
	}
	equalTables(t, &seq.table, &ragged.table)
}

func TestBasicInsertBatchUnitEquivalence(t *testing.T) {
	keys, _ := batchStream(60000)
	cfg := Config{Arrays: 2, BucketsPerArray: 2048, Seed: 7}

	seq := NewBasic[flowkey.FiveTuple](cfg)
	for i := range keys {
		seq.Insert(keys[i], 1)
	}
	batch := NewBasic[flowkey.FiveTuple](cfg)
	batch.InsertBatchUnit(keys)
	equalTables(t, &seq.table, &batch.table)
	equalDecode(t, seq.Decode(), batch.Decode())
	if got, want := batch.SumValues(), uint64(len(keys)); got != want {
		t.Fatalf("SumValues = %d, want %d", got, want)
	}
}

func TestHardwareInsertBatchEquivalence(t *testing.T) {
	keys, ws := batchStream(60000)
	cfg := Config{Arrays: 3, BucketsPerArray: 997, Seed: 42}

	seq := NewHardware[flowkey.FiveTuple](cfg)
	for i := range keys {
		seq.Insert(keys[i], ws[i])
	}
	batch := NewHardware[flowkey.FiveTuple](cfg)
	batch.InsertBatch(keys, ws)
	equalTables(t, &seq.table, &batch.table)
	equalDecode(t, seq.Decode(), batch.Decode())
	if seq.SumValues() != batch.SumValues() {
		t.Fatalf("SumValues differ: %d vs %d", seq.SumValues(), batch.SumValues())
	}
}

func TestHardwareInsertBatchUnitEquivalence(t *testing.T) {
	keys, _ := batchStream(60000)
	cfg := Config{Arrays: 2, BucketsPerArray: 2048, Seed: 7}

	seq := NewHardware[flowkey.FiveTuple](cfg)
	for i := range keys {
		seq.Insert(keys[i], 1)
	}
	batch := NewHardware[flowkey.FiveTuple](cfg)
	batch.InsertBatchUnit(keys)
	equalTables(t, &seq.table, &batch.table)
	equalDecode(t, seq.Decode(), batch.Decode())
}

// TestInsertBatchInterleavedWithInsert mixes the two APIs on one
// sketch: a batch is just a faster spelling of a run of Inserts, so
// interleaving must continue the same deterministic sequence.
func TestInsertBatchInterleavedWithInsert(t *testing.T) {
	keys, ws := batchStream(30000)
	cfg := Config{Arrays: 2, BucketsPerArray: 1024, Seed: 11}

	seq := NewBasic[flowkey.FiveTuple](cfg)
	for i := range keys {
		seq.Insert(keys[i], ws[i])
	}
	mixed := NewBasic[flowkey.FiveTuple](cfg)
	third := len(keys) / 3
	for i := 0; i < third; i++ {
		mixed.Insert(keys[i], ws[i])
	}
	mixed.InsertBatch(keys[third:2*third], ws[third:2*third])
	for i := 2 * third; i < len(keys); i++ {
		mixed.Insert(keys[i], ws[i])
	}
	equalTables(t, &seq.table, &mixed.table)
}

func TestInsertBatchLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InsertBatch with mismatched lengths did not panic")
		}
	}()
	s := NewBasic[flowkey.FiveTuple](Config{Arrays: 2, BucketsPerArray: 8, Seed: 1})
	s.InsertBatch(make([]flowkey.FiveTuple, 3), make([]uint64, 2))
}

// TestInsertBatchIPv4 covers a second key type end to end through the
// batched path (IPv4 exercises the zero-block hash specialization).
func TestInsertBatchIPv4(t *testing.T) {
	cfg := Config{Arrays: 2, BucketsPerArray: 512, Seed: 3}
	keys := make([]flowkey.IPv4, 40000)
	for i := range keys {
		keys[i] = flowkey.IPv4FromUint32(uint32(i*2654435761) >> 12)
	}
	seq := NewBasic[flowkey.IPv4](cfg)
	for _, k := range keys {
		seq.Insert(k, 1)
	}
	batch := NewBasic[flowkey.IPv4](cfg)
	batch.InsertBatchUnit(keys)
	equalTables(t, &seq.table, &batch.table)
}
