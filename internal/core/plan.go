package core

import (
	"fmt"
	"math"

	"cocosketch/internal/flowkey"
)

// Planning helpers: translate the paper's accuracy theorems into
// concrete sketch geometries, so operators size memory from targets
// instead of guessing.

// PlanAccuracy returns a Config satisfying Theorem 3's error bound
//
//	P[ R(e) ≥ ε·sqrt(f̄(e)/f(e)) ] ≤ δ
//
// via l = ceil(3/ε²) and d = max(2, ceil(ln(1/δ))).
func PlanAccuracy(epsilon, delta float64, seed uint64) (Config, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return Config{}, fmt.Errorf("core: epsilon %v outside (0,1)", epsilon)
	}
	if delta <= 0 || delta >= 1 {
		return Config{}, fmt.Errorf("core: delta %v outside (0,1)", delta)
	}
	l := int(math.Ceil(3 / (epsilon * epsilon)))
	d := int(math.Ceil(math.Log(1 / delta)))
	if d < 2 {
		d = 2
	}
	return Config{Arrays: d, BucketsPerArray: l, Seed: seed}, nil
}

// PlanRecall returns a Config meeting Theorem 4's recall bound for
// heavy hitters carrying at least `fraction` of traffic:
//
//	P[recorded] ≥ 1 − (1 + l·f/f̄)^−d ≥ recall.
//
// With the paper's example (recall 0.99 of 1% hitters, d = 2) this
// yields l = 900.
func PlanRecall(fraction, recall float64, d int, seed uint64) (Config, error) {
	if fraction <= 0 || fraction >= 1 {
		return Config{}, fmt.Errorf("core: fraction %v outside (0,1)", fraction)
	}
	if recall <= 0 || recall >= 1 {
		return Config{}, fmt.Errorf("core: recall %v outside (0,1)", recall)
	}
	if d <= 0 {
		return Config{}, fmt.Errorf("core: d must be positive")
	}
	// Solve (1 + l·r)^-d ≤ 1 − recall for l, where r = f/f̄ =
	// fraction/(1−fraction).
	r := fraction / (1 - fraction)
	l := int(math.Ceil((math.Pow(1/(1-recall), 1/float64(d)) - 1) / r))
	if l < 1 {
		l = 1
	}
	return Config{Arrays: d, BucketsPerArray: l, Seed: seed}, nil
}

// MemoryForConfig reports the byte footprint of a planned Config for
// key type K.
func MemoryForConfig[K flowkey.Key](cfg Config) int {
	return cfg.Arrays * cfg.BucketsPerArray * BucketBytes[K]()
}
