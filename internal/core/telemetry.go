package core

import "cocosketch/internal/telemetry"

// Telemetry wiring. The hot path never touches an atomic: insertAt
// increments plain single-writer fields of opCounts (one predictable
// store per packet, identical whether telemetry is on or off), and the
// deltas since the last flush are pushed into the shared atomic
// counters once per Insert/InsertBatch/Merge call. With telemetry off
// (nil SketchMetrics) the flush is a nil-check and nothing else, so
// the instrumented path is benchmark-equivalent to the uninstrumented
// one (see BenchmarkInsertBatch and the bench-smoke CI gate).

// opCounts accumulates update outcomes with plain fields. Sketches are
// single-goroutine (see the package comment), so these are written
// without atomics; cross-goroutine visibility happens only through the
// flushed telemetry counters.
type opCounts struct {
	matched  uint64
	replaced uint64
	kept     uint64
	merges   uint64
}

// setTelemetry installs the counter group and resets the flush base so
// pre-existing local counts are reported exactly once.
func (t *table[K]) setTelemetry(m *telemetry.SketchMetrics) {
	t.tel = m
	t.telBase = opCounts{}
	t.flushTel()
}

// flushTel pushes the outcome counts accumulated since the last flush
// into the shared atomic counters. Called at the end of every mutating
// operation; no-op (one branch) when telemetry is off.
func (t *table[K]) flushTel() {
	m := t.tel
	if m == nil {
		return
	}
	if d := t.ops.matched - t.telBase.matched; d != 0 {
		m.Matched.Add(d)
	}
	if d := t.ops.replaced - t.telBase.replaced; d != 0 {
		m.Replaced.Add(d)
	}
	if d := t.ops.kept - t.telBase.kept; d != 0 {
		m.Kept.Add(d)
	}
	if d := t.ops.merges - t.telBase.merges; d != 0 {
		m.Merges.Add(d)
	}
	t.telBase = t.ops
}

// SetTelemetry installs (or, with nil, removes) the telemetry counter
// group the sketch flushes its update outcomes into. Counts
// accumulated before the call are flushed immediately. Several
// sketches may share one group; their deltas add up. Returns the
// sketch for chaining.
func (s *Basic[K]) SetTelemetry(m *telemetry.SketchMetrics) *Basic[K] {
	s.setTelemetry(m)
	return s
}

// SetTelemetry installs the telemetry counter group; see
// Basic.SetTelemetry.
func (s *Hardware[K]) SetTelemetry(m *telemetry.SketchMetrics) *Hardware[K] {
	s.setTelemetry(m)
	return s
}

// SetTelemetry installs the counter group on every live shard and on
// shards created by future rotations, and counts rotations into
// m.Rotations. Returns the window for chaining.
func (w *Window) SetTelemetry(m *telemetry.SketchMetrics) *Window {
	w.tel = m
	for _, s := range w.shards {
		s.SetTelemetry(m)
	}
	return w
}
