package core

import "cocosketch/internal/flowkey"

// Stats summarizes a sketch's occupancy — the control-plane
// diagnostics an operator reads before trusting a decode (a saturated
// sketch with uniformly large counters signals under-provisioning).
type Stats struct {
	// Arrays and BucketsPerArray echo the geometry.
	Arrays          int
	BucketsPerArray int
	// Occupied counts buckets with non-zero counters.
	Occupied int
	// TotalWeight is the sum of all counters.
	TotalWeight uint64
	// MinValue / MaxValue / MeanValue summarize non-empty counters.
	MinValue  uint64
	MaxValue  uint64
	MeanValue float64
	// PerArrayWeight is each array's counter total (equal for the
	// hardware variant; a load-balance signal for the basic one).
	PerArrayWeight []uint64
}

// Occupancy is the fraction of non-empty buckets.
func (s Stats) Occupancy() float64 {
	total := s.Arrays * s.BucketsPerArray
	if total == 0 {
		return 0
	}
	return float64(s.Occupied) / float64(total)
}

func (t *table[K]) stats() Stats {
	s := Stats{
		Arrays:          t.d,
		BucketsPerArray: t.l,
		MinValue:        ^uint64(0),
		PerArrayWeight:  make([]uint64, t.d),
	}
	for i := 0; i < t.d; i++ {
		arr := t.buckets[i*t.l : (i+1)*t.l]
		for j := range arr {
			v := arr[j].Val
			if v == 0 {
				continue
			}
			s.Occupied++
			s.TotalWeight += v
			s.PerArrayWeight[i] += v
			if v < s.MinValue {
				s.MinValue = v
			}
			if v > s.MaxValue {
				s.MaxValue = v
			}
		}
	}
	if s.Occupied == 0 {
		s.MinValue = 0
	} else {
		s.MeanValue = float64(s.TotalWeight) / float64(s.Occupied)
	}
	return s
}

// Stats reports the sketch's occupancy diagnostics.
func (s *Basic[K]) Stats() Stats { return s.stats() }

// Stats reports the sketch's occupancy diagnostics.
func (s *Hardware[K]) Stats() Stats { return s.stats() }

// interface checks: both variants satisfy the shared contracts.
var (
	_ interface {
		Insert(flowkey.FiveTuple, uint64)
		Query(flowkey.FiveTuple) uint64
		Decode() map[flowkey.FiveTuple]uint64
		MemoryBytes() int
		Name() string
	} = (*Basic[flowkey.FiveTuple])(nil)
	_ interface {
		Insert(flowkey.FiveTuple, uint64)
		Query(flowkey.FiveTuple) uint64
		Decode() map[flowkey.FiveTuple]uint64
		MemoryBytes() int
		Name() string
	} = (*Hardware[flowkey.FiveTuple])(nil)
)
