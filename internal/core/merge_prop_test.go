package core

import (
	"testing"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/xrand"
)

// Merge is commutative and associative at the value level: counters add
// bucket-by-bucket, so any merge order yields identical per-bucket
// values and totals. The surviving keys are NOT bit-comparable across
// orders — the conflict winner is an RNG draw — but each must be a key
// one of the operands held in that bucket. These are exactly the
// guarantees the collector relies on when agent shards arrive in
// arbitrary order, so they are pinned as properties over random
// snapshots rather than hand-picked cases.

// cloneSketch copies src via the consume-no-randomness merge-into-empty
// path, so property trials can reuse one snapshot in several orders.
func cloneSketch(t *testing.T, cfg Config, src *Basic[flowkey.FiveTuple]) *Basic[flowkey.FiveTuple] {
	t.Helper()
	c := NewBasic[flowkey.FiveTuple](cfg)
	if err := c.Merge(src); err != nil {
		t.Fatal(err)
	}
	return c
}

// mergeAll folds the operands left to right into a fresh sketch.
func mergeAll(t *testing.T, cfg Config, ops ...*Basic[flowkey.FiveTuple]) *Basic[flowkey.FiveTuple] {
	t.Helper()
	out := NewBasic[flowkey.FiveTuple](cfg)
	for _, op := range ops {
		if err := out.Merge(op); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// randomSnapshot builds one shard-like sketch with its own insertion
// RNG stream and a key universe that overlaps the other operands'.
func randomSnapshot(cfg Config, rng *xrand.Source, n int) *Basic[flowkey.FiveTuple] {
	s := NewBasic[flowkey.FiveTuple](cfg)
	s.Reseed(rng.Uint64())
	fillDisjoint(s, rng, uint32(rng.Uint64n(300)), 400, n)
	return s
}

// checkSameValues asserts two merge results agree on every bucket's
// counter and that each surviving key is legitimate: held by one of the
// operands in that same bucket.
func checkSameValues(t *testing.T, label string, got, want *Basic[flowkey.FiveTuple], ops []*Basic[flowkey.FiveTuple]) {
	t.Helper()
	for i := range got.buckets {
		if got.buckets[i].Val != want.buckets[i].Val {
			t.Fatalf("%s: bucket %d value %d vs %d", label, i, got.buckets[i].Val, want.buckets[i].Val)
		}
		if got.buckets[i].Val == 0 {
			continue
		}
		legit := false
		for _, op := range ops {
			if op.buckets[i].Val > 0 && op.buckets[i].Key == got.buckets[i].Key {
				legit = true
				break
			}
		}
		if !legit {
			t.Fatalf("%s: bucket %d key %v held by no operand", label, i, got.buckets[i].Key)
		}
	}
}

// TestMergeCommutativeAssociativeValues drives A+B vs B+A and
// (A+B)+C vs A+(B+C) over random overlapping snapshots.
func TestMergeCommutativeAssociativeValues(t *testing.T) {
	cfg := Config{Arrays: 2, BucketsPerArray: 32, Seed: 9}
	for trial := 0; trial < 12; trial++ {
		rng := xrand.New(uint64(trial)*0x9e37 + 1)
		a := randomSnapshot(cfg, rng, 800+trial*100)
		b := randomSnapshot(cfg, rng, 600+trial*50)
		c := randomSnapshot(cfg, rng, 400+trial*75)
		ops := []*Basic[flowkey.FiveTuple]{a, b, c}

		ab := mergeAll(t, cfg, a, b)
		ba := mergeAll(t, cfg, b, a)
		checkSameValues(t, "A+B vs B+A", ab, ba, ops[:2])
		if ab.SumValues() != a.SumValues()+b.SumValues() {
			t.Fatalf("trial %d: A+B total %d != %d+%d",
				trial, ab.SumValues(), a.SumValues(), b.SumValues())
		}

		// (A+B)+C reuses ab; A+(B+C) needs B+C first, then folds it
		// into a clone of A so the operands stay pristine.
		abc := cloneSketch(t, cfg, ab)
		if err := abc.Merge(c); err != nil {
			t.Fatal(err)
		}
		bc := mergeAll(t, cfg, b, c)
		acb := cloneSketch(t, cfg, a)
		if err := acb.Merge(bc); err != nil {
			t.Fatal(err)
		}
		checkSameValues(t, "(A+B)+C vs A+(B+C)", abc, acb, ops)
		if abc.SumValues() != a.SumValues()+b.SumValues()+c.SumValues() {
			t.Fatalf("trial %d: triple total %d", trial, abc.SumValues())
		}
	}
}
