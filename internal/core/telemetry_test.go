package core

import (
	"testing"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/telemetry"
	"cocosketch/internal/trace"
)

// telCfg is a small geometry that forces plenty of evictions.
func telCfg() Config { return Config{Arrays: 2, BucketsPerArray: 64, Seed: 9} }

// TestBasicTelemetryAccounting checks the flushed outcome counters
// partition the insert stream exactly: matched+replaced+kept equals
// the number of non-zero-weight inserts, on both the single and batch
// paths, and the batch path reports the same totals as the sequential
// one (it is bit-identical).
func TestBasicTelemetryAccounting(t *testing.T) {
	tr := trace.CAIDALike(20_000, 5)
	keys := make([]flowkey.FiveTuple, len(tr.Packets))
	for i := range tr.Packets {
		keys[i] = tr.Packets[i].Key
	}

	reg := telemetry.New()
	seq := NewBasic[flowkey.FiveTuple](telCfg()).SetTelemetry(telemetry.NewSketchMetrics(reg, "seq"))
	for _, k := range keys {
		seq.Insert(k, 1)
	}
	regB := telemetry.New()
	bat := NewBasic[flowkey.FiveTuple](telCfg()).SetTelemetry(telemetry.NewSketchMetrics(regB, "bat"))
	bat.InsertBatchUnit(keys)

	for _, tc := range []struct {
		name string
		snap telemetry.Snapshot
		pfx  string
	}{
		{"sequential", reg.Snapshot(), "seq"},
		{"batch", regB.Snapshot(), "bat"},
	} {
		total := tc.snap.Counters[tc.pfx+".matched"] +
			tc.snap.Counters[tc.pfx+".replaced"] +
			tc.snap.Counters[tc.pfx+".kept"]
		if total != uint64(len(keys)) {
			t.Errorf("%s: outcomes sum to %d, want %d inserts", tc.name, total, len(keys))
		}
		if tc.snap.Counters[tc.pfx+".replaced"] == 0 {
			t.Errorf("%s: no replacements on an over-subscribed sketch", tc.name)
		}
	}

	s1, s2 := reg.Snapshot(), regB.Snapshot()
	for _, k := range []string{"matched", "replaced", "kept"} {
		if s1.Counters["seq."+k] != s2.Counters["bat."+k] {
			t.Errorf("batch path diverges on %s: %d vs %d",
				k, s1.Counters["seq."+k], s2.Counters["bat."+k])
		}
	}
}

// TestHardwareTelemetryAccounting checks the per-array outcome
// partition: d outcomes per insert.
func TestHardwareTelemetryAccounting(t *testing.T) {
	tr := trace.CAIDALike(10_000, 6)
	reg := telemetry.New()
	s := NewHardware[flowkey.FiveTuple](telCfg()).SetTelemetry(telemetry.NewSketchMetrics(reg, "hw"))
	for i := range tr.Packets {
		s.Insert(tr.Packets[i].Key, 1)
	}
	snap := reg.Snapshot()
	total := snap.Counters["hw.matched"] + snap.Counters["hw.replaced"] + snap.Counters["hw.kept"]
	want := uint64(len(tr.Packets)) * uint64(telCfg().Arrays)
	if total != want {
		t.Fatalf("outcomes sum to %d, want %d (d outcomes per insert)", total, want)
	}
}

// TestTelemetryMergeAndLateInstall checks Merge counting and that
// installing telemetry after the fact flushes accumulated counts
// exactly once.
func TestTelemetryMergeAndLateInstall(t *testing.T) {
	tr := trace.CAIDALike(5_000, 7)
	s := NewBasic[flowkey.FiveTuple](telCfg())
	for i := range tr.Packets {
		s.Insert(tr.Packets[i].Key, 1)
	}

	reg := telemetry.New()
	s.SetTelemetry(telemetry.NewSketchMetrics(reg, "core"))
	snap := reg.Snapshot()
	total := snap.Counters["core.matched"] + snap.Counters["core.replaced"] + snap.Counters["core.kept"]
	if total != uint64(len(tr.Packets)) {
		t.Fatalf("late install flushed %d outcomes, want %d", total, len(tr.Packets))
	}

	other := NewBasic[flowkey.FiveTuple](telCfg())
	other.Insert(tr.Packets[0].Key, 3)
	if err := s.Merge(other); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("core.merges").Value(); got != 1 {
		t.Fatalf("merges = %d, want 1", got)
	}
	// Re-installing must not double-flush.
	s.SetTelemetry(telemetry.NewSketchMetrics(reg, "core"))
	snap = reg.Snapshot()
	if got := snap.Counters["core.matched"] + snap.Counters["core.replaced"] + snap.Counters["core.kept"]; got != 2*total {
		t.Fatalf("re-install flushed to %d, want %d (one extra copy of the history)", got, 2*total)
	}
}

// TestWindowTelemetryRotations checks rotation counting and that
// rotated-in shards inherit the counter group.
func TestWindowTelemetryRotations(t *testing.T) {
	reg := telemetry.New()
	w := NewWindow(3, telCfg()).SetTelemetry(telemetry.NewSketchMetrics(reg, "win"))
	key := trace.CAIDALike(10, 1).Packets[0].Key
	for e := 0; e < 5; e++ {
		w.Insert(key, 1)
		w.Rotate()
	}
	if got := reg.Counter("win.rotations").Value(); got != 5 {
		t.Fatalf("rotations = %d, want 5", got)
	}
	// Inserts into rotated-in shards must still be counted.
	snap := reg.Snapshot()
	total := snap.Counters["win.matched"] + snap.Counters["win.replaced"] + snap.Counters["win.kept"]
	if total != 5 {
		t.Fatalf("outcomes sum to %d, want 5", total)
	}
}
