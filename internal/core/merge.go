package core

import (
	"errors"
	"fmt"

	"cocosketch/internal/flowkey"
)

// Mergeability and compression are the paper's stated future-work
// directions (§8: "the merge technique used in Elastic Sketch can
// adapt to dynamic workloads"). Both operations below preserve the
// unbiasedness of subset-sum estimates: when two buckets collapse into
// one, the surviving key is chosen with probability proportional to
// its mass — exactly the stochastic variance minimization rule applied
// to the aggregate.

// ErrIncompatible reports a merge between sketches of different
// geometry or hash seeds.
var ErrIncompatible = errors.New("core: sketches are not mergeable (geometry or seeds differ)")

// mergeBuckets collapses b into a, keeping a's key with probability
// proportional to a's mass.
func mergeBuckets[K flowkey.Key](t *table[K], a, b *Bucket[K]) {
	if b.Val == 0 {
		return
	}
	if a.Val == 0 || a.Key == b.Key {
		a.Val += b.Val
		if a.Val-b.Val == 0 {
			a.Key = b.Key
		}
		return
	}
	total := a.Val + b.Val
	if t.rng.Bernoulli(b.Val, total) {
		a.Key = b.Key
	}
	a.Val = total
}

func (t *table[K]) compatible(o *table[K]) bool {
	if t.d != o.d || t.l != o.l {
		return false
	}
	for i, s := range t.seeds {
		if o.seeds[i] != s {
			return false
		}
	}
	return true
}

// mergeTable folds other's buckets into t bucket-by-bucket.
func (t *table[K]) mergeTable(other *table[K]) error {
	if !t.compatible(other) {
		return ErrIncompatible
	}
	for i := range t.buckets {
		mergeBuckets(t, &t.buckets[i], &other.buckets[i])
	}
	t.ops.merges++
	t.flushTel()
	return nil
}

// Merge folds another basic CocoSketch (same Config) into s, e.g. to
// combine per-thread shards or measurement epochs. The other sketch is
// left unchanged. Estimates on the merged sketch remain unbiased for
// the concatenated stream.
//
// Merging into a freshly constructed (empty) sketch copies the other
// sketch's buckets verbatim and consumes no randomness, which is how
// shard.Engine assembles its decode view (see internal/shard).
func (s *Basic[K]) Merge(other *Basic[K]) error {
	return s.mergeTable(&other.table)
}

// Merge folds another hardware-friendly CocoSketch into s.
func (s *Hardware[K]) Merge(other *Hardware[K]) error {
	return s.mergeTable(&other.table)
}

// Compatible reports whether other shares s's geometry and hash seeds —
// exactly the precondition under which Merge succeeds. It lets a
// receiver (e.g. the network-wide collector) validate a deserialized
// shard before retaining it, instead of discovering the mismatch at
// merge time.
func (s *Basic[K]) Compatible(other *Basic[K]) bool {
	return s.table.compatible(&other.table)
}

// Compatible reports whether other shares s's geometry and hash seeds
// (the Merge precondition), for the hardware-friendly variant.
func (s *Hardware[K]) Compatible(other *Hardware[K]) bool {
	return s.table.compatible(&other.table)
}

// compressTable halves the number of buckets per array repeatedly by
// merging adjacent pairs (2j, 2j+1) into slot j. With multiply-shift
// indexing, index(h) over l/2 buckets equals index(h) over l buckets
// shifted right by one, so a flow keeps addressing its merged bucket.
func (t *table[K]) compressTable(factor int) error {
	if factor < 1 || factor&(factor-1) != 0 {
		return fmt.Errorf("core: compression factor %d must be a power of two", factor)
	}
	for ; factor > 1; factor >>= 1 {
		if t.l%2 != 0 {
			return fmt.Errorf("core: cannot halve %d buckets", t.l)
		}
		half := t.l / 2
		// Compact the flat layout in place: the write position
		// i·half+j never passes the read position i·l+2j, so the
		// forward sweep is safe.
		for i := 0; i < t.d; i++ {
			for j := 0; j < half; j++ {
				merged := t.buckets[i*t.l+2*j]
				mergeBuckets(t, &merged, &t.buckets[i*t.l+2*j+1])
				t.buckets[i*half+j] = merged
			}
		}
		t.buckets = t.buckets[:t.d*half]
		t.l = half
	}
	return nil
}

// Compress shrinks the sketch to 1/factor of its memory (factor must
// be a power of two), adapting to falling memory budgets as Elastic
// does. Note that after compression, bucket addressing uses the new l,
// which maps the pair (j, j+l/2) onto j.
//
// Compression trades accuracy for memory exactly like a smaller sketch
// would; estimates remain unbiased.
func (s *Basic[K]) Compress(factor int) error {
	return s.compressTable(factor)
}

// Compress shrinks the hardware-friendly sketch; see Basic.Compress.
func (s *Hardware[K]) Compress(factor int) error {
	return s.compressTable(factor)
}
