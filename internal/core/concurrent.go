package core

import (
	"sync"

	"cocosketch/internal/flowkey"
)

// Concurrent wraps a basic CocoSketch with a mutex for callers that
// cannot shard per goroutine.
//
// For high-rate ingest, prefer shard.Engine (internal/shard): it runs
// one private sketch per worker behind SPSC rings and merges at decode
// time, so the hot path takes no locks and scales with cores (the
// scaling curve is the ext-scaling experiment). Use Concurrent only
// when sharding does not pay for itself: low-rate, many-writer
// situations like control-plane bookkeeping, where the handful of
// contended inserts per second does not justify an engine's worker
// goroutines, rings and per-worker sketch memory — or when callers
// need read-your-write Query visibility immediately after Insert,
// which a sharded engine only provides at snapshot granularity.
type Concurrent[K flowkey.Key] struct {
	mu sync.Mutex
	s  *Basic[K]
}

// NewConcurrent wraps a freshly configured sketch.
func NewConcurrent[K flowkey.Key](cfg Config) *Concurrent[K] {
	return &Concurrent[K]{s: NewBasic[K](cfg)}
}

// Insert adds weight w to flow key.
func (c *Concurrent[K]) Insert(key K, w uint64) {
	c.mu.Lock()
	c.s.Insert(key, w)
	c.mu.Unlock()
}

// Query returns the recorded estimate of key.
func (c *Concurrent[K]) Query(key K) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Query(key)
}

// Decode builds the full-key table.
func (c *Concurrent[K]) Decode() map[K]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.Decode()
}

// MemoryBytes reports the wrapped sketch's footprint.
func (c *Concurrent[K]) MemoryBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.MemoryBytes()
}

// Name identifies the algorithm.
func (c *Concurrent[K]) Name() string { return "CocoSketch-locked" }

// SumValues exposes total counter mass (invariant checks).
func (c *Concurrent[K]) SumValues() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.SumValues()
}
