package core

import (
	"testing"

	"cocosketch/internal/flowkey"
)

// allocGateKeys builds a reusable key batch for the steady-state
// allocation gates.
func allocGateKeys(n int) ([]flowkey.FiveTuple, []uint64) {
	keys := make([]flowkey.FiveTuple, n)
	ws := make([]uint64, n)
	for i := range keys {
		keys[i] = flowkey.FiveTuple{
			SrcIP:   [4]byte{10, byte(i >> 8), byte(i), 1},
			DstIP:   [4]byte{10, 0, 0, 2},
			SrcPort: uint16(i), DstPort: 443, Proto: 6,
		}
		ws[i] = uint64(i%1500 + 40)
	}
	return keys, ws
}

// TestInsertBatchNoAllocs pins the batched insert hot path — the sink
// of the zero-allocation ingest pipeline — at zero heap allocations per
// burst in steady state, for both weighted and unit-weight forms and
// both sketch variants.
func TestInsertBatchNoAllocs(t *testing.T) {
	cfg := Config{Arrays: 2, BucketsPerArray: 1024, Seed: 5}
	keys, ws := allocGateKeys(256)

	basic := NewBasic[flowkey.FiveTuple](cfg)
	basic.InsertBatch(keys, ws) // warm the scratch buffers
	if n := testing.AllocsPerRun(100, func() { basic.InsertBatch(keys, ws) }); n != 0 {
		t.Errorf("Basic.InsertBatch allocates %.1f times per burst, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { basic.InsertBatchUnit(keys) }); n != 0 {
		t.Errorf("Basic.InsertBatchUnit allocates %.1f times per burst, want 0", n)
	}

	hw := NewHardware[flowkey.FiveTuple](cfg)
	hw.InsertBatch(keys, ws)
	if n := testing.AllocsPerRun(100, func() { hw.InsertBatch(keys, ws) }); n != 0 {
		t.Errorf("Hardware.InsertBatch allocates %.1f times per burst, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { hw.InsertBatchUnit(keys) }); n != 0 {
		t.Errorf("Hardware.InsertBatchUnit allocates %.1f times per burst, want 0", n)
	}
}
