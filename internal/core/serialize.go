package core

import (
	"encoding/binary"
	"fmt"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/sketch"
)

// Binary serialization lets a data plane ship its sketch to a central
// control plane (the paper's Step 3 runs off-switch) or snapshot a
// measurement epoch to disk. The format is versioned and fixed-width:
//
//	magic "COCO" | version u8 | variant u8 | d u32 | l u32 | keySize u16 |
//	rngState u64 | seeds [d]u32 | buckets d×l × (key [keySize]byte, val u64)
//
// all little-endian. Because flow-key types are generic, decoding
// takes the key codec explicitly (e.g. flowkey.FiveTupleFromBytes).

const (
	serMagic   = "COCO"
	serVersion = 1

	variantBasic    = 0
	variantHardware = 1
)

func (t *table[K]) marshal(variant byte) []byte {
	keySize := sketch.KeySize[K]()
	size := 4 + 1 + 1 + 4 + 4 + 2 + 8 + 4*t.d + t.d*t.l*(keySize+8)
	out := make([]byte, 0, size)
	out = append(out, serMagic...)
	out = append(out, serVersion, variant)
	out = binary.LittleEndian.AppendUint32(out, uint32(t.d))
	out = binary.LittleEndian.AppendUint32(out, uint32(t.l))
	out = binary.LittleEndian.AppendUint16(out, uint16(keySize))
	out = binary.LittleEndian.AppendUint64(out, t.rng.State())
	for _, s := range t.seeds {
		out = binary.LittleEndian.AppendUint32(out, s)
	}
	for i := range t.buckets {
		out = t.buckets[i].Key.AppendBytes(out)
		out = binary.LittleEndian.AppendUint64(out, t.buckets[i].Val)
	}
	return out
}

// KeyDecoder reconstructs a key from its canonical encoding
// (flowkey.FiveTupleFromBytes, flowkey.IPv4FromBytes, …).
type KeyDecoder[K flowkey.Key] func([]byte) (K, error)

func unmarshalTable[K flowkey.Key](data []byte, wantVariant byte, decode KeyDecoder[K]) (table[K], error) {
	var zero table[K]
	keySize := sketch.KeySize[K]()
	header := 4 + 1 + 1 + 4 + 4 + 2 + 8
	if len(data) < header {
		return zero, fmt.Errorf("core: truncated sketch (%d bytes)", len(data))
	}
	if string(data[:4]) != serMagic {
		return zero, fmt.Errorf("core: bad magic %q", data[:4])
	}
	if data[4] != serVersion {
		return zero, fmt.Errorf("core: unsupported version %d", data[4])
	}
	if data[5] != wantVariant {
		return zero, fmt.Errorf("core: sketch variant %d, want %d", data[5], wantVariant)
	}
	d := int(binary.LittleEndian.Uint32(data[6:10]))
	l := int(binary.LittleEndian.Uint32(data[10:14]))
	ks := int(binary.LittleEndian.Uint16(data[14:16]))
	rngState := binary.LittleEndian.Uint64(data[16:24])
	if ks != keySize {
		return zero, fmt.Errorf("core: key size %d in stream, %d for this key type", ks, keySize)
	}
	if d <= 0 || l <= 0 {
		return zero, fmt.Errorf("core: invalid geometry d=%d l=%d", d, l)
	}
	want := header + 4*d + d*l*(keySize+8)
	if len(data) != want {
		return zero, fmt.Errorf("core: sketch payload is %d bytes, want %d", len(data), want)
	}

	t := newTable[K](Config{Arrays: d, BucketsPerArray: l})
	t.rng.SetState(rngState)
	off := header
	for i := 0; i < d; i++ {
		t.seeds[i] = binary.LittleEndian.Uint32(data[off : off+4])
		off += 4
	}
	for i := 0; i < d; i++ {
		for j := 0; j < l; j++ {
			key, err := decode(data[off : off+keySize])
			if err != nil {
				return zero, fmt.Errorf("core: bucket (%d,%d): %w", i, j, err)
			}
			off += keySize
			val := binary.LittleEndian.Uint64(data[off : off+8])
			off += 8
			t.buckets[i*l+j] = Bucket[K]{Key: key, Val: val}
		}
	}
	return t, nil
}

// MarshalBinary serializes the sketch.
func (s *Basic[K]) MarshalBinary() ([]byte, error) {
	return s.table.marshal(variantBasic), nil
}

// UnmarshalBasic reconstructs a basic CocoSketch serialized with
// MarshalBinary. Inserting into the restored sketch continues the
// exact deterministic sequence of the original.
func UnmarshalBasic[K flowkey.Key](data []byte, decode KeyDecoder[K]) (*Basic[K], error) {
	t, err := unmarshalTable(data, variantBasic, decode)
	if err != nil {
		return nil, err
	}
	return &Basic[K]{table: t}, nil
}

// MarshalBinary serializes the sketch. The divider is not part of the
// state; restored sketches use exact division until SetDivider.
func (s *Hardware[K]) MarshalBinary() ([]byte, error) {
	return s.table.marshal(variantHardware), nil
}

// UnmarshalHardware reconstructs a hardware-friendly CocoSketch.
func UnmarshalHardware[K flowkey.Key](data []byte, decode KeyDecoder[K]) (*Hardware[K], error) {
	t, err := unmarshalTable(data, variantHardware, decode)
	if err != nil {
		return nil, err
	}
	return &Hardware[K]{table: t, divider: ExactDivider{}}, nil
}
