// Package ovs models the paper's Open vSwitch integration (§B): the
// datapath writes packet headers into shared ring buffers, and
// measurement threads poll the rings and update per-thread CocoSketch
// shards — the architecture of the paper's OVS+DPDK testbed, with the
// NIC and DPDK replaced by in-memory trace replay.
package ovs

import (
	"sync/atomic"

	"cocosketch/internal/trace"
)

// Ring is a single-producer single-consumer lock-free ring buffer of
// packet records, mirroring the DPDK rings between the OVS datapath
// and the measurement process.
type Ring struct {
	buf    []trace.Packet
	mask   uint64
	_      [48]byte // keep producer and consumer indices on separate cache lines
	tail   atomic.Uint64
	_      [56]byte
	head   atomic.Uint64
	_      [56]byte
	closed atomic.Bool
}

// NewRing returns a ring with capacity rounded up to a power of two
// (minimum 2).
func NewRing(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring{buf: make([]trace.Packet, n), mask: uint64(n - 1)}
}

// Capacity returns the usable slot count.
func (r *Ring) Capacity() int { return len(r.buf) }

// TryPush appends one packet; it fails when the ring is full. Only one
// goroutine may push.
func (r *Ring) TryPush(p trace.Packet) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = p
	r.tail.Store(tail + 1)
	return true
}

// TryPop removes one packet; it fails when the ring is empty. Only one
// goroutine may pop.
func (r *Ring) TryPop(out *trace.Packet) bool {
	head := r.head.Load()
	if head == r.tail.Load() {
		return false
	}
	*out = r.buf[head&r.mask]
	r.head.Store(head + 1)
	return true
}

// Close marks the producer side done; consumers drain and stop.
func (r *Ring) Close() { r.closed.Store(true) }

// Closed reports whether the producer finished. A consumer should stop
// only when Closed and a subsequent TryPop fails.
func (r *Ring) Closed() bool { return r.closed.Load() }

// Len reports the queued packet count (approximate under concurrency).
func (r *Ring) Len() int { return int(r.tail.Load() - r.head.Load()) }
