// Package ovs models the paper's Open vSwitch integration (§B): the
// datapath writes packet headers into shared ring buffers, and
// measurement threads poll the rings and update per-thread CocoSketch
// shards — the architecture of the paper's OVS+DPDK testbed, with the
// NIC and DPDK replaced by in-memory trace replay.
package ovs

import (
	"sync/atomic"

	"cocosketch/internal/trace"
)

// RingOf is a single-producer single-consumer lock-free ring buffer,
// mirroring the DPDK rings between the OVS datapath and the
// measurement process. The element type is anything small enough to
// copy by value: trace.Packet records on the decoded path, pooled
// frame references (packet.FrameRef) on the zero-allocation path.
//
// Each side keeps a private snapshot of the opposite index (headCache
// for the producer, tailCache for the consumer) and refreshes it only
// when the ring looks full/empty against the snapshot — the standard
// DPDK cached-index optimization that cuts cross-core cache-line
// traffic from one load per operation to roughly one per ring
// traversal.
type RingOf[T any] struct {
	buf  []T
	mask uint64
	_    [40]byte // keep producer and consumer state on separate cache lines
	// Producer cache line: the write index plus the producer's
	// snapshot of head.
	tail      atomic.Uint64
	headCache uint64
	_         [48]byte
	// Consumer cache line: the read index plus the consumer's
	// snapshot of tail.
	head      atomic.Uint64
	tailCache uint64
	_         [48]byte
	closed    atomic.Bool
}

// Ring is the packet-record ring of the decoded ingest path (the
// original element type of this package; see RingOf for the generic
// form).
type Ring = RingOf[trace.Packet]

// NewRing returns a packet-record ring with capacity rounded up to a
// power of two (minimum 2).
func NewRing(capacity int) *Ring { return NewRingOf[trace.Packet](capacity) }

// NewRingOf returns a ring of T with capacity rounded up to a power of
// two (minimum 2).
func NewRingOf[T any](capacity int) *RingOf[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &RingOf[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Capacity returns the usable slot count.
func (r *RingOf[T]) Capacity() int { return len(r.buf) }

// TryPush appends one element; it fails when the ring is full. Only
// one goroutine may push.
func (r *RingOf[T]) TryPush(p T) bool {
	tail := r.tail.Load()
	if tail-r.headCache >= uint64(len(r.buf)) {
		r.headCache = r.head.Load()
		if tail-r.headCache >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[tail&r.mask] = p
	r.tail.Store(tail + 1)
	return true
}

// TryPushN appends as many of ps as fit and returns the count (0 when
// the ring is full). Slots are claimed with one index publication for
// the whole burst. Only one goroutine may push.
func (r *RingOf[T]) TryPushN(ps []T) int {
	tail := r.tail.Load()
	free := uint64(len(r.buf)) - (tail - r.headCache)
	if free < uint64(len(ps)) {
		r.headCache = r.head.Load()
		free = uint64(len(r.buf)) - (tail - r.headCache)
	}
	n := len(ps)
	if uint64(n) > free {
		n = int(free)
	}
	for i := 0; i < n; i++ {
		r.buf[(tail+uint64(i))&r.mask] = ps[i]
	}
	if n > 0 {
		r.tail.Store(tail + uint64(n))
	}
	return n
}

// TryPop removes one element; it fails when the ring is empty. Only
// one goroutine may pop.
func (r *RingOf[T]) TryPop(out *T) bool {
	head := r.head.Load()
	if head == r.tailCache {
		r.tailCache = r.tail.Load()
		if head == r.tailCache {
			return false
		}
	}
	*out = r.buf[head&r.mask]
	r.head.Store(head + 1)
	return true
}

// TryPopN removes up to len(out) elements and returns the count (0
// when the ring is empty). Only one goroutine may pop.
func (r *RingOf[T]) TryPopN(out []T) int {
	head := r.head.Load()
	avail := r.tailCache - head
	if avail < uint64(len(out)) {
		r.tailCache = r.tail.Load()
		avail = r.tailCache - head
	}
	n := len(out)
	if uint64(n) > avail {
		n = int(avail)
	}
	for i := 0; i < n; i++ {
		out[i] = r.buf[(head+uint64(i))&r.mask]
	}
	if n > 0 {
		r.head.Store(head + uint64(n))
	}
	return n
}

// Close marks the producer side done; consumers drain and stop.
func (r *RingOf[T]) Close() { r.closed.Store(true) }

// Closed reports whether the producer finished. A consumer should stop
// only when Closed and a subsequent TryPop fails.
func (r *RingOf[T]) Closed() bool { return r.closed.Load() }

// Len reports the queued element count (approximate under concurrency).
func (r *RingOf[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }
