package ovs_test

import (
	"fmt"

	"cocosketch/internal/ovs"
	"cocosketch/internal/trace"
)

// ExampleRun replays a trace through the OVS-like pipeline: per-thread
// ring buffers between datapath pollers and measurement threads, one
// CocoSketch shard per thread, merged at the end. The merged table
// accounts for every packet (the pipeline is lossless unless
// DropOnFull is set).
func ExampleRun() {
	tr := trace.CAIDALike(50_000, 1)

	stats, merged := ovs.Run(tr, ovs.Config{
		Threads:     2,
		MemoryBytes: 500 << 10,
		WithSketch:  true,
		Seed:        1,
	})

	var mass uint64
	for _, v := range merged {
		mass += v
	}
	fmt.Println("packets:", stats.Packets)
	fmt.Println("drops:", stats.Drops)
	fmt.Println("merged mass equals packets:", mass == stats.Packets)
	// Output:
	// packets: 50000
	// drops: 0
	// merged mass equals packets: true
}

// ExampleRing shows the single-producer single-consumer ring on its
// own: batched push and pop with the cached-index fast path.
func ExampleRing() {
	r := ovs.NewRing(8)

	in := make([]trace.Packet, 5)
	for i := range in {
		in[i].Size = uint32(i + 1)
	}
	pushed := r.TryPushN(in)

	out := make([]trace.Packet, 8)
	popped := r.TryPopN(out)

	fmt.Println("pushed:", pushed, "popped:", popped)
	fmt.Println("first size:", out[0].Size, "last size:", out[popped-1].Size)
	// Output:
	// pushed: 5 popped: 5
	// first size: 1 last size: 5
}
