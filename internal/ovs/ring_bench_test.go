package ovs

import (
	"runtime"
	"sync"
	"testing"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/trace"
)

// uncachedPush mirrors TryPush without the headCache snapshot: it
// reloads the consumer index on every call, as the pre-batching ring
// did. Kept as a benchmark reference for the cached-index win.
func uncachedPush(r *Ring, p trace.Packet) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = p
	r.tail.Store(tail + 1)
	return true
}

// uncachedPop mirrors TryPop without the tailCache snapshot.
func uncachedPop(r *Ring, out *trace.Packet) bool {
	head := r.head.Load()
	if head == r.tail.Load() {
		return false
	}
	*out = r.buf[head&r.mask]
	r.head.Store(head + 1)
	return true
}

// runSPSC pumps b.N packets through a fresh ring with the given
// producer and consumer loop bodies and reports ns per packet.
func runSPSC(b *testing.B, produce func(*Ring, []trace.Packet), consume func(*Ring, []trace.Packet) int) {
	r := NewRing(4096)
	burst := make([]trace.Packet, transferBatch)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sent := 0
		for sent < b.N {
			n := b.N - sent
			if n > len(burst) {
				n = len(burst)
			}
			produce(r, burst[:n])
			sent += n
		}
		r.Close()
	}()
	out := make([]trace.Packet, transferBatch)
	got := 0
	for got < b.N {
		n := consume(r, out)
		if n == 0 {
			runtime.Gosched()
		}
		got += n
	}
	wg.Wait()
}

func BenchmarkRingSPSC(b *testing.B) {
	b.Run("single-uncached", func(b *testing.B) {
		runSPSC(b,
			func(r *Ring, ps []trace.Packet) {
				for i := range ps {
					for !uncachedPush(r, ps[i]) {
						runtime.Gosched()
					}
				}
			},
			func(r *Ring, out []trace.Packet) int {
				n := 0
				for n < len(out) && uncachedPop(r, &out[n]) {
					n++
				}
				return n
			})
	})
	b.Run("single-cached", func(b *testing.B) {
		runSPSC(b,
			func(r *Ring, ps []trace.Packet) {
				for i := range ps {
					for !r.TryPush(ps[i]) {
						runtime.Gosched()
					}
				}
			},
			func(r *Ring, out []trace.Packet) int {
				n := 0
				for n < len(out) && r.TryPop(&out[n]) {
					n++
				}
				return n
			})
	})
	b.Run("batch-cached", func(b *testing.B) {
		runSPSC(b,
			func(r *Ring, ps []trace.Packet) {
				for len(ps) > 0 {
					n := r.TryPushN(ps)
					ps = ps[n:]
					if n == 0 {
						runtime.Gosched()
					}
				}
			},
			func(r *Ring, out []trace.Packet) int {
				return r.TryPopN(out)
			})
	})
}

// TestRingBatchFIFO checks TryPushN/TryPopN ordering and partial-push
// accounting on a full ring, single-threaded.
func TestRingBatchFIFO(t *testing.T) {
	r := NewRing(8)
	ps := make([]trace.Packet, 5)
	for i := range ps {
		ps[i] = pkt(uint32(i))
	}
	if n := r.TryPushN(ps); n != 5 {
		t.Fatalf("pushed %d, want 5", n)
	}
	// Only 3 slots remain; the burst must be truncated.
	for i := range ps {
		ps[i] = pkt(uint32(5 + i))
	}
	if n := r.TryPushN(ps); n != 3 {
		t.Fatalf("pushed %d into nearly full ring, want 3", n)
	}
	if n := r.TryPushN(ps[3:]); n != 0 {
		t.Fatalf("pushed %d into full ring, want 0", n)
	}
	out := make([]trace.Packet, 16)
	if n := r.TryPopN(out); n != 8 {
		t.Fatalf("popped %d, want 8", n)
	}
	for i := 0; i < 8; i++ {
		if out[i].Key.SrcIP != flowkey.IPv4FromUint32(uint32(i)) {
			t.Fatalf("position %d: got %v", i, out[i].Key)
		}
	}
	if n := r.TryPopN(out); n != 0 {
		t.Fatalf("popped %d from empty ring, want 0", n)
	}
}

// TestRingBatchMixedSingle interleaves single and batch operations on
// both sides to check the two APIs share one index pair coherently.
func TestRingBatchMixedSingle(t *testing.T) {
	r := NewRing(16)
	next := uint32(0)
	want := uint32(0)
	out := make([]trace.Packet, 4)
	for round := 0; round < 200; round++ {
		if round%2 == 0 {
			ps := []trace.Packet{pkt(next), pkt(next + 1), pkt(next + 2)}
			if n := r.TryPushN(ps); n != 3 {
				t.Fatalf("round %d: pushed %d", round, n)
			}
			next += 3
		} else {
			if !r.TryPush(pkt(next)) {
				t.Fatalf("round %d: single push failed", round)
			}
			next++
		}
		if round%3 == 0 {
			var p trace.Packet
			for r.TryPop(&p) {
				if p.Key.SrcIP != flowkey.IPv4FromUint32(want) {
					t.Fatalf("round %d: single pop got %v, want %d", round, p.Key, want)
				}
				want++
			}
		} else {
			for {
				n := r.TryPopN(out)
				if n == 0 {
					break
				}
				for i := 0; i < n; i++ {
					if out[i].Key.SrcIP != flowkey.IPv4FromUint32(want) {
						t.Fatalf("round %d: batch pop got %v, want %d", round, out[i].Key, want)
					}
					want++
				}
			}
		}
	}
	if want != next {
		t.Fatalf("drained %d packets, pushed %d", want, next)
	}
}

// TestRingBatchConcurrentStress pushes a large stream through the ring
// with batched producers/consumers across two goroutines and verifies
// strict FIFO order and zero loss (the DropOnFull=false contract).
func TestRingBatchConcurrentStress(t *testing.T) {
	r := NewRing(64)
	const total = 300000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		burst := make([]trace.Packet, 48)
		sent := uint32(0)
		for sent < total {
			n := len(burst)
			if rem := total - sent; uint32(n) > rem {
				n = int(rem)
			}
			for i := 0; i < n; i++ {
				burst[i] = pkt(sent + uint32(i))
			}
			for off := 0; off < n; {
				pushed := r.TryPushN(burst[off:n])
				if pushed == 0 {
					runtime.Gosched()
				}
				off += pushed
			}
			sent += uint32(n)
		}
		r.Close()
	}()
	out := make([]trace.Packet, 32)
	got := uint32(0)
	for {
		n := r.TryPopN(out)
		if n == 0 {
			if r.Closed() {
				if n = r.TryPopN(out); n == 0 {
					break
				}
			} else {
				runtime.Gosched()
				continue
			}
		}
		for i := 0; i < n; i++ {
			if out[i].Key.SrcIP != flowkey.IPv4FromUint32(got) {
				t.Fatalf("out-of-order delivery at %d: %v", got, out[i].Key)
			}
			got++
		}
	}
	wg.Wait()
	if got != total {
		t.Fatalf("consumed %d packets, want %d", got, total)
	}
}
