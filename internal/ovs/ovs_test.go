package ovs

import (
	"runtime"
	"sync"
	"testing"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/trace"
)

func pkt(i uint32) trace.Packet {
	return trace.Packet{
		Key:  flowkey.FiveTuple{SrcIP: flowkey.IPv4FromUint32(i), Proto: 6},
		Size: 64,
	}
}

func TestRingCapacityRounding(t *testing.T) {
	if got := NewRing(1000).Capacity(); got != 1024 {
		t.Fatalf("capacity = %d, want 1024", got)
	}
	if got := NewRing(0).Capacity(); got != 2 {
		t.Fatalf("capacity = %d, want 2", got)
	}
}

func TestRingFIFO(t *testing.T) {
	r := NewRing(8)
	for i := uint32(0); i < 8; i++ {
		if !r.TryPush(pkt(i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.TryPush(pkt(99)) {
		t.Fatal("push into full ring succeeded")
	}
	var p trace.Packet
	for i := uint32(0); i < 8; i++ {
		if !r.TryPop(&p) {
			t.Fatalf("pop %d failed", i)
		}
		if p.Key.SrcIP != flowkey.IPv4FromUint32(i) {
			t.Fatalf("pop %d returned wrong packet %v", i, p.Key)
		}
	}
	if r.TryPop(&p) {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing(4)
	var p trace.Packet
	for round := uint32(0); round < 100; round++ {
		if !r.TryPush(pkt(round)) {
			t.Fatalf("push failed on round %d", round)
		}
		if !r.TryPop(&p) || p.Key.SrcIP != flowkey.IPv4FromUint32(round) {
			t.Fatalf("wrap-around mismatch on round %d", round)
		}
	}
}

func TestRingConcurrentSPSC(t *testing.T) {
	r := NewRing(64)
	const n = 100000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint32(0); i < n; i++ {
			for !r.TryPush(pkt(i)) {
				runtime.Gosched()
			}
		}
		r.Close()
	}()
	var p trace.Packet
	var got uint32
	for {
		if r.TryPop(&p) {
			if p.Key.SrcIP != flowkey.IPv4FromUint32(got) {
				t.Fatalf("out-of-order delivery at %d: %v", got, p.Key)
			}
			got++
			continue
		}
		if r.Closed() && !r.TryPop(&p) {
			break
		}
		runtime.Gosched()
	}
	// A final drain in case Close raced the last pops.
	for r.TryPop(&p) {
		got++
	}
	wg.Wait()
	if got != n {
		t.Fatalf("consumed %d packets, want %d", got, n)
	}
}

func TestPipelineMovesAllPackets(t *testing.T) {
	tr := trace.CAIDALike(50000, 1)
	for _, threads := range []int{1, 2, 4} {
		stats, _ := Run(tr, Config{Threads: threads, WithSketch: false})
		if stats.Packets != uint64(len(tr.Packets)) {
			t.Fatalf("threads=%d moved %d packets, want %d", threads, stats.Packets, len(tr.Packets))
		}
		if stats.Mpps() <= 0 {
			t.Fatalf("threads=%d Mpps = %f", threads, stats.Mpps())
		}
	}
}

func TestPipelineSketchAccuracy(t *testing.T) {
	tr := trace.CAIDALike(200000, 2)
	stats, decoded := Run(tr, Config{
		Threads: 4, MemoryBytes: 512 * 1024, WithSketch: true, Seed: 3,
	})
	if stats.Packets != uint64(len(tr.Packets)) {
		t.Fatal("packet count mismatch")
	}
	if decoded == nil {
		t.Fatal("no decode returned")
	}
	// Sharded decode conserves the total stream weight.
	var sum uint64
	for _, v := range decoded {
		sum += v
	}
	if sum != uint64(len(tr.Packets)) {
		t.Fatalf("decoded total %d, want %d", sum, len(tr.Packets))
	}
	// The top flow must be found with a sane estimate.
	truth := tr.FullCounts()
	var topKey flowkey.FiveTuple
	var topVal uint64
	for k, v := range truth {
		if v > topVal {
			topKey, topVal = k, v
		}
	}
	got := decoded[topKey]
	if got < topVal/2 || got > topVal*2 {
		t.Fatalf("top flow estimate %d, true %d", got, topVal)
	}
}

func TestPipelineShardingDisjoint(t *testing.T) {
	// Each flow must land in exactly one shard: re-running with the
	// same seed gives identical decode (no cross-shard randomness).
	tr := trace.CAIDALike(30000, 4)
	_, d1 := Run(tr, Config{Threads: 3, MemoryBytes: 256 * 1024, WithSketch: true, Seed: 9})
	_, d2 := Run(tr, Config{Threads: 3, MemoryBytes: 256 * 1024, WithSketch: true, Seed: 9})
	if len(d1) != len(d2) {
		t.Fatalf("non-deterministic decode: %d vs %d entries", len(d1), len(d2))
	}
	for k, v := range d1 {
		if d2[k] != v {
			t.Fatalf("non-deterministic estimate for %v", k)
		}
	}
}

func TestPipelineDropOnFull(t *testing.T) {
	// A tiny ring with a sketching consumer WILL overflow when allowed
	// to drop; the moved packet count plus drops must equal the trace.
	tr := trace.CAIDALike(50000, 6)
	stats, dec := Run(tr, Config{
		Threads: 2, RingCapacity: 4, WithSketch: true,
		MemoryBytes: 64 * 1024, DropOnFull: true, Seed: 2,
	})
	if stats.Packets+stats.Drops != uint64(len(tr.Packets)) {
		t.Fatalf("packets %d + drops %d != %d", stats.Packets, stats.Drops, len(tr.Packets))
	}
	var sum uint64
	for _, v := range dec {
		sum += v
	}
	if sum != stats.Packets {
		t.Fatalf("sketch total %d != delivered %d", sum, stats.Packets)
	}
}

func TestPipelineLosslessByDefault(t *testing.T) {
	tr := trace.CAIDALike(20000, 7)
	stats, _ := Run(tr, Config{Threads: 2, RingCapacity: 4, WithSketch: true, MemoryBytes: 64 * 1024})
	if stats.Drops != 0 || stats.Packets != uint64(len(tr.Packets)) {
		t.Fatalf("lossless mode dropped: %+v", stats)
	}
}

func TestPipelineDefaults(t *testing.T) {
	tr := trace.CAIDALike(1000, 5)
	stats, dec := Run(tr, Config{Threads: 0, MemoryBytes: 0, WithSketch: true})
	if stats.Packets != 1000 || dec == nil {
		t.Fatal("defaulted run failed")
	}
}

func BenchmarkPipeline(b *testing.B) {
	tr := trace.CAIDALike(200000, 1)
	for _, threads := range []int{1, 2, 4} {
		name := map[int]string{1: "threads=1", 2: "threads=2", 4: "threads=4"}[threads]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Run(tr, Config{Threads: threads, MemoryBytes: 512 * 1024, WithSketch: true, Seed: 1})
			}
		})
	}
}
