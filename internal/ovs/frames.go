package ovs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/packet"
)

// RunFrames is the raw-frame variant of Run: the datapath receives
// Ethernet frames (as a NIC delivers them), each measurement thread
// parses its queue's frames with a private zero-allocation decoder and
// updates its sketch shard. This exercises the full per-packet path of
// the paper's OVS deployment — parse, hash, update — rather than
// pre-extracted keys.
//
// Frames are pre-partitioned round-robin (RSS by key hash would
// require parsing in the datapath; round-robin models per-queue NIC
// spraying, so a flow may land in several shards — decode merging
// handles that, as merging is estimate-preserving).
func RunFrames(frames [][]byte, cfg Config) (Stats, map[flowkey.FiveTuple]uint64) {
	threads := cfg.Threads
	if threads <= 0 {
		threads = 1
	}
	shards := make([][][]byte, threads)
	for i, f := range frames {
		shards[i%threads] = append(shards[i%threads], f)
	}

	type frameRing struct {
		buf    [][]byte
		mask   uint64
		tail   atomic.Uint64
		head   atomic.Uint64
		closed atomic.Bool
	}
	newRing := func(capacity int) *frameRing {
		n := 2
		for n < capacity {
			n <<= 1
		}
		return &frameRing{buf: make([][]byte, n), mask: uint64(n - 1)}
	}
	ringCap := cfg.RingCapacity
	if ringCap <= 0 {
		ringCap = 4096
	}

	sketches := make([]*core.Basic[flowkey.FiveTuple], threads)
	rings := make([]*frameRing, threads)
	for i := range rings {
		rings[i] = newRing(ringCap)
		if cfg.WithSketch {
			mem := cfg.MemoryBytes / threads
			if mem < 1024 {
				mem = 1024
			}
			sketches[i] = core.NewBasicForMemory[flowkey.FiveTuple](
				core.DefaultArrays, mem, cfg.Seed+uint64(i))
		}
	}

	var parsed, dropped atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(2 * threads)
	start := time.Now()
	for i := 0; i < threads; i++ {
		go func(id int) { // PMD producer
			defer wg.Done()
			r := rings[id]
			for _, f := range shards[id] {
				for {
					tail := r.tail.Load()
					if tail-r.head.Load() < uint64(len(r.buf)) {
						r.buf[tail&r.mask] = f
						r.tail.Store(tail + 1)
						break
					}
					runtime.Gosched()
				}
			}
			r.closed.Store(true)
		}(i)
		go func(id int) { // measurement consumer with private decoder
			defer wg.Done()
			r := rings[id]
			sk := sketches[id]
			var dec packet.Decoder
			pop := func() ([]byte, bool) {
				head := r.head.Load()
				if head == r.tail.Load() {
					return nil, false
				}
				f := r.buf[head&r.mask]
				r.head.Store(head + 1)
				return f, true
			}
			for {
				if f, ok := pop(); ok {
					key, err := dec.FiveTuple(f)
					if err != nil {
						dropped.Add(1)
						continue
					}
					parsed.Add(1)
					if sk != nil {
						sk.Insert(key, 1)
					}
					continue
				}
				if r.closed.Load() {
					if _, ok := pop(); !ok {
						return
					}
					continue
				}
				runtime.Gosched()
			}
		}(i)
	}
	wg.Wait()
	stats := Stats{
		Packets: parsed.Load(),
		Drops:   dropped.Load(),
		Elapsed: time.Since(start),
	}
	if !cfg.WithSketch {
		return stats, nil
	}
	merged := make(map[flowkey.FiveTuple]uint64)
	for _, sk := range sketches {
		for k, v := range sk.Decode() {
			merged[k] += v
		}
	}
	return stats, merged
}
