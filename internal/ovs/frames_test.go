package ovs

import (
	"testing"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/packet"
	"cocosketch/internal/trace"
)

func buildFrames(t *testing.T, n int, seed uint64) ([][]byte, *trace.Trace) {
	t.Helper()
	tr := trace.CAIDALike(n, seed)
	frames := make([][]byte, len(tr.Packets))
	for i := range tr.Packets {
		frames[i] = packet.Build(tr.Packets[i].Key, packet.BuildOptions{})
	}
	return frames, tr
}

func TestRunFramesParsesEverything(t *testing.T) {
	frames, tr := buildFrames(t, 50000, 3)
	stats, decoded := RunFrames(frames, Config{
		Threads: 4, WithSketch: true, MemoryBytes: 512 * 1024, Seed: 5,
	})
	if stats.Packets != uint64(len(frames)) || stats.Drops != 0 {
		t.Fatalf("parsed %d, drops %d", stats.Packets, stats.Drops)
	}
	var sum uint64
	for _, v := range decoded {
		sum += v
	}
	if sum != uint64(len(frames)) {
		t.Fatalf("decode total %d, want %d", sum, len(frames))
	}
	// The top flow must be visible despite round-robin sharding.
	truth := tr.FullCounts()
	var topKey flowkey.FiveTuple
	var topVal uint64
	for k, v := range truth {
		if v > topVal {
			topKey, topVal = k, v
		}
	}
	got := decoded[topKey]
	if got < topVal/2 || got > topVal*2 {
		t.Fatalf("top flow estimate %d, true %d", got, topVal)
	}
}

func TestRunFramesSkipsGarbage(t *testing.T) {
	frames, _ := buildFrames(t, 1000, 4)
	garbage := 0
	for i := 0; i < len(frames); i += 10 {
		frames[i] = []byte{0xDE, 0xAD} // unparsable
		garbage++
	}
	stats, _ := RunFrames(frames, Config{Threads: 2, WithSketch: true, MemoryBytes: 64 * 1024})
	if stats.Drops != uint64(garbage) {
		t.Fatalf("drops = %d, want %d", stats.Drops, garbage)
	}
	if stats.Packets != uint64(len(frames)-garbage) {
		t.Fatalf("parsed = %d", stats.Packets)
	}
}

func TestRunFramesWithoutSketch(t *testing.T) {
	frames, _ := buildFrames(t, 5000, 5)
	stats, dec := RunFrames(frames, Config{Threads: 1})
	if dec != nil {
		t.Fatal("decode returned without sketch")
	}
	if stats.Packets != 5000 {
		t.Fatalf("parsed %d", stats.Packets)
	}
}
