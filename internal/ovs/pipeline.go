package ovs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/trace"
)

// Config parameterizes a pipeline run.
type Config struct {
	// Threads is the number of Rx-queue/measurement thread pairs
	// (the x-axis of Figure 15(a)).
	Threads int
	// MemoryBytes is the total sketch memory, split across shards.
	MemoryBytes int
	// RingCapacity per thread (defaults to 4096, the DPDK default).
	RingCapacity int
	// WithSketch false measures the bare datapath ("OVS w/o Ours").
	WithSketch bool
	// DropOnFull makes the datapath drop packets when a ring is full
	// (NIC-like overload behaviour) instead of spinning losslessly.
	DropOnFull bool
	// Seed drives the sketch shards.
	Seed uint64
}

// transferBatch is the burst size of the ring transfer loops and the
// sketch insert batches, matching DPDK's default rx burst of 32–64
// packets.
const transferBatch = 64

// Stats reports a run's outcome.
type Stats struct {
	Packets uint64
	// Drops counts packets discarded at full rings (DropOnFull only).
	Drops   uint64
	Elapsed time.Duration
}

// Mpps is million packets per second moved through the rings.
func (s Stats) Mpps() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Packets) / s.Elapsed.Seconds() / 1e6
}

// Run replays the trace through per-thread Rx queues. As in the
// paper's deployment, each Rx queue has its own datapath poller: the
// trace is pre-partitioned by flow-key hash (receive-side scaling), and
// every queue gets a producer goroutine (the PMD thread writing headers
// into the ring) paired with a measurement goroutine updating a private
// CocoSketch shard. It returns the run stats and, when WithSketch, the
// merged full-key decode across shards.
//
// Scaling with Threads requires physical cores; on a single-core host
// the pairs time-slice and throughput stays flat.
func Run(tr *trace.Trace, cfg Config) (Stats, map[flowkey.FiveTuple]uint64) {
	threads := cfg.Threads
	if threads <= 0 {
		threads = 1
	}
	ringCap := cfg.RingCapacity
	if ringCap <= 0 {
		ringCap = 4096
	}
	// Receive-side scaling: split flows across queues by key hash.
	shards := make([][]trace.Packet, threads)
	shardSeed := uint32(cfg.Seed)
	if threads == 1 {
		shards[0] = tr.Packets
	} else {
		for i := range shards {
			shards[i] = make([]trace.Packet, 0, len(tr.Packets)/threads+1)
		}
		for i := range tr.Packets {
			p := tr.Packets[i]
			s := int(uint64(p.Key.Hash(shardSeed)) * uint64(threads) >> 32)
			shards[s] = append(shards[s], p)
		}
	}

	rings := make([]*Ring, threads)
	sketches := make([]*core.Basic[flowkey.FiveTuple], threads)
	for i := range rings {
		rings[i] = NewRing(ringCap)
		if cfg.WithSketch {
			mem := cfg.MemoryBytes / threads
			if mem < 1024 {
				mem = 1024
			}
			sketches[i] = core.NewBasicForMemory[flowkey.FiveTuple](
				core.DefaultArrays, mem, cfg.Seed+uint64(i))
		}
	}

	var drops atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(2 * threads)
	start := time.Now()
	for i := 0; i < threads; i++ {
		// The PMD thread: writes this queue's headers into the ring in
		// bursts, as a DPDK rx_burst loop would.
		go func(id int) {
			defer wg.Done()
			ring := rings[id]
			shard := shards[id]
			for off := 0; off < len(shard); {
				end := off + transferBatch
				if end > len(shard) {
					end = len(shard)
				}
				n := ring.TryPushN(shard[off:end])
				off += n
				if off == end {
					continue
				}
				if cfg.DropOnFull {
					// NIC-like overload: discard what did not fit
					// in this burst and move to the next one.
					drops.Add(uint64(end - off))
					off = end
					continue
				}
				runtime.Gosched()
			}
			ring.Close()
		}(i)
		// The measurement thread: drains the ring in bursts and feeds
		// the batched sketch insert path.
		go func(id int) {
			defer wg.Done()
			ring := rings[id]
			sk := sketches[id]
			buf := make([]trace.Packet, transferBatch)
			keys := make([]flowkey.FiveTuple, transferBatch)
			for {
				n := ring.TryPopN(buf)
				if n == 0 {
					if ring.Closed() {
						// Close is published after the final push;
						// one more poll drains a push that raced
						// the empty check above.
						if n = ring.TryPopN(buf); n == 0 {
							return
						}
					} else {
						runtime.Gosched()
						continue
					}
				}
				if sk != nil {
					for j := 0; j < n; j++ {
						keys[j] = buf[j].Key
					}
					sk.InsertBatchUnit(keys[:n])
				}
			}
		}(i)
	}
	wg.Wait()
	stats := Stats{
		Packets: uint64(len(tr.Packets)) - drops.Load(),
		Drops:   drops.Load(),
		Elapsed: time.Since(start),
	}

	if !cfg.WithSketch {
		return stats, nil
	}
	merged := make(map[flowkey.FiveTuple]uint64)
	for _, sk := range sketches {
		for k, v := range sk.Decode() {
			merged[k] += v
		}
	}
	return stats, merged
}
