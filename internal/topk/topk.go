// Package topk provides a capacity-bounded tracker of the largest flows,
// the "min-heap" companion of Count-Min/Count sketches (the paper's
// CM-Heap and C-Heap baselines) and of UnivMon's per-level heavy hitters.
package topk

import "cocosketch/internal/flowkey"

// Tracker keeps the k flows with the largest estimates seen so far.
// Updating an existing flow adjusts its estimate in place; a new flow
// enters only by exceeding the current minimum once the tracker is full.
// The zero value is unusable; call New.
type Tracker[K flowkey.Key] struct {
	capacity int
	heap     []entry[K] // min-heap on Est
	index    map[K]int  // key -> heap position
}

type entry[K flowkey.Key] struct {
	Key K
	Est uint64
}

// New returns a tracker with the given capacity (at least 1).
func New[K flowkey.Key](capacity int) *Tracker[K] {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracker[K]{
		capacity: capacity,
		heap:     make([]entry[K], 0, capacity),
		index:    make(map[K]int, capacity),
	}
}

// EntryBytes is the memory charge of one tracked flow: key, 8-byte
// estimate and 8 bytes of index overhead.
func EntryBytes[K flowkey.Key]() int {
	var zero K
	return len(zero.AppendBytes(nil)) + 16
}

// Capacity returns the configured capacity.
func (t *Tracker[K]) Capacity() int { return t.capacity }

// Len returns the number of tracked flows.
func (t *Tracker[K]) Len() int { return len(t.heap) }

// Min returns the smallest tracked estimate (0 when not yet full, so
// that any flow can enter).
func (t *Tracker[K]) Min() uint64 {
	if len(t.heap) < t.capacity {
		return 0
	}
	return t.heap[0].Est
}

// Contains reports whether the flow is tracked.
func (t *Tracker[K]) Contains(key K) bool {
	_, ok := t.index[key]
	return ok
}

// Estimate returns the tracked estimate of key (0 if untracked).
func (t *Tracker[K]) Estimate(key K) uint64 {
	if i, ok := t.index[key]; ok {
		return t.heap[i].Est
	}
	return 0
}

// Update offers a fresh estimate for a flow. Tracked flows are adjusted
// in place. Untracked flows displace the minimum only when est exceeds
// it (the classic sketch-plus-heap update rule).
func (t *Tracker[K]) Update(key K, est uint64) {
	if i, ok := t.index[key]; ok {
		old := t.heap[i].Est
		t.heap[i].Est = est
		if est >= old {
			t.siftDown(i)
		} else {
			t.siftUp(i)
		}
		return
	}
	if len(t.heap) < t.capacity {
		t.heap = append(t.heap, entry[K]{Key: key, Est: est})
		i := len(t.heap) - 1
		t.index[key] = i
		t.siftUp(i)
		return
	}
	if est <= t.heap[0].Est {
		return
	}
	delete(t.index, t.heap[0].Key)
	t.heap[0] = entry[K]{Key: key, Est: est}
	t.index[key] = 0
	t.siftDown(0)
}

// Items returns the tracked flows as a table.
func (t *Tracker[K]) Items() map[K]uint64 {
	out := make(map[K]uint64, len(t.heap))
	for _, e := range t.heap {
		out[e.Key] = e.Est
	}
	return out
}

func (t *Tracker[K]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent].Est <= t.heap[i].Est {
			break
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *Tracker[K]) siftDown(i int) {
	n := len(t.heap)
	for {
		smallest := i
		if l := 2*i + 1; l < n && t.heap[l].Est < t.heap[smallest].Est {
			smallest = l
		}
		if r := 2*i + 2; r < n && t.heap[r].Est < t.heap[smallest].Est {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.swap(i, smallest)
		i = smallest
	}
}

func (t *Tracker[K]) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.index[t.heap[i].Key] = i
	t.index[t.heap[j].Key] = j
}
