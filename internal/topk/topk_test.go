package topk

import (
	"sort"
	"testing"
	"testing/quick"

	"cocosketch/internal/flowkey"
)

func key(i uint32) flowkey.IPv4 { return flowkey.IPv4FromUint32(i) }

func TestTrackerBasics(t *testing.T) {
	tr := New[flowkey.IPv4](3)
	if tr.Capacity() != 3 || tr.Len() != 0 || tr.Min() != 0 {
		t.Fatal("fresh tracker state wrong")
	}
	tr.Update(key(1), 10)
	tr.Update(key(2), 5)
	tr.Update(key(3), 7)
	if tr.Len() != 3 || tr.Min() != 5 {
		t.Fatalf("Len=%d Min=%d", tr.Len(), tr.Min())
	}
	// Too small to enter.
	tr.Update(key(4), 4)
	if tr.Contains(key(4)) {
		t.Fatal("flow smaller than min entered a full tracker")
	}
	// Large enough: displaces the min (key 2).
	tr.Update(key(5), 6)
	if tr.Contains(key(2)) || !tr.Contains(key(5)) {
		t.Fatal("displacement failed")
	}
	if tr.Min() != 6 {
		t.Fatalf("Min = %d, want 6", tr.Min())
	}
}

func TestTrackerUpdateInPlace(t *testing.T) {
	tr := New[flowkey.IPv4](2)
	tr.Update(key(1), 10)
	tr.Update(key(2), 20)
	tr.Update(key(1), 30) // grow
	if tr.Estimate(key(1)) != 30 || tr.Min() != 20 {
		t.Fatalf("Estimate=%d Min=%d", tr.Estimate(key(1)), tr.Min())
	}
	tr.Update(key(1), 5) // shrink (count sketch estimates can decrease)
	if tr.Estimate(key(1)) != 5 || tr.Min() != 5 {
		t.Fatalf("after shrink: Estimate=%d Min=%d", tr.Estimate(key(1)), tr.Min())
	}
	if tr.Len() != 2 {
		t.Fatalf("Len changed on in-place update: %d", tr.Len())
	}
}

func TestTrackerKeepsTrueTopK(t *testing.T) {
	// Feeding monotonically growing estimates (like CM estimates) must
	// leave exactly the true top-k tracked.
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		const k = 8
		tr := New[flowkey.IPv4](k)
		// Simulate per-packet updates: each flow's estimate rises to
		// its final size.
		final := make(map[flowkey.IPv4]uint64)
		for i, s := range sizes {
			fk := key(uint32(i))
			v := uint64(s) + 1
			final[fk] = v
			for est := uint64(1); est <= v; est += (v + 9) / 10 {
				tr.Update(fk, est)
			}
			tr.Update(fk, v)
		}
		// True top-k threshold.
		vals := make([]uint64, 0, len(final))
		for _, v := range final {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
		kth := vals[min(k, len(vals))-1]
		for fk, v := range final {
			if v > kth && !tr.Contains(fk) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerHeapInvariant(t *testing.T) {
	tr := New[flowkey.IPv4](64)
	seq := []uint64{5, 3, 9, 1, 12, 7, 7, 2, 100, 4}
	for i, v := range seq {
		tr.Update(key(uint32(i%5)), v)
		for j := 1; j < tr.Len(); j++ {
			if tr.heap[(j-1)/2].Est > tr.heap[j].Est {
				t.Fatalf("heap violated at step %d", i)
			}
		}
		for k2, idx := range tr.index {
			if tr.heap[idx].Key != k2 {
				t.Fatalf("index out of sync at step %d", i)
			}
		}
	}
}

func TestTrackerItems(t *testing.T) {
	tr := New[flowkey.IPv4](4)
	tr.Update(key(1), 10)
	tr.Update(key(2), 20)
	items := tr.Items()
	if len(items) != 2 || items[key(1)] != 10 || items[key(2)] != 20 {
		t.Fatalf("Items = %v", items)
	}
}

func TestTrackerMinCapacity(t *testing.T) {
	tr := New[flowkey.IPv4](0)
	if tr.Capacity() != 1 {
		t.Fatalf("capacity clamp failed: %d", tr.Capacity())
	}
	tr.Update(key(1), 1)
	tr.Update(key(2), 2)
	if tr.Len() != 1 || !tr.Contains(key(2)) {
		t.Fatal("single-slot tracker misbehaved")
	}
}

func TestEntryBytes(t *testing.T) {
	if got := EntryBytes[flowkey.FiveTuple](); got != 13+16 {
		t.Fatalf("EntryBytes[FiveTuple] = %d", got)
	}
	if got := EntryBytes[flowkey.IPv4](); got != 4+16 {
		t.Fatalf("EntryBytes[IPv4] = %d", got)
	}
}
