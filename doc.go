// Package cocosketch is a from-scratch Go reproduction of "CocoSketch:
// High-Performance Sketch-based Measurement over Arbitrary Partial Key
// Query" (SIGCOMM 2021): one sketch over a declared full key answers
// flow-size queries for any partial key — any field subset, any prefix
// — with unbiased, variance-bounded estimates.
//
// Start with README.md (install, quickstart, layout), DESIGN.md (system
// inventory, per-experiment index, substitutions for hardware/trace
// dependencies) and EXPERIMENTS.md (paper vs measured for every table
// and figure). The root package carries the benchmark harness
// (bench_test.go): one testing.B benchmark per paper artifact plus the
// ablations.
//
// Library entry points:
//
//   - internal/core — the CocoSketch algorithm (basic and
//     hardware-friendly), plus merge, compress, serialize, sampling,
//     sliding windows and planning helpers;
//   - internal/flowkey, internal/query — the partial-key model and the
//     aggregation/SQL front-end;
//   - internal/experiments — the evaluation runners behind
//     cmd/cocobench.
package cocosketch
