// Command cocogen generates synthetic traces (CAIDA-like or MAWI-like,
// see DESIGN.md §5 for the substitution rationale) and writes them as
// standard pcap files replayable by cocoquery or any pcap tool.
//
// Usage:
//
//	cocogen -profile caida -packets 1000000 -seed 1 -o trace.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cocosketch/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cocogen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		profile = fs.String("profile", "caida", "trace profile: caida or mawi")
		packets = fs.Int("packets", 1_000_000, "number of packets")
		seed    = fs.Uint64("seed", 1, "random seed")
		out     = fs.String("o", "trace.pcap", "output pcap path")
		snap    = fs.Uint("snaplen", 128, "pcap snapshot length")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var tr *trace.Trace
	switch *profile {
	case "caida":
		tr = trace.CAIDALike(*packets, *seed)
	case "mawi":
		tr = trace.MAWILike(*packets, *seed)
	default:
		fmt.Fprintf(stderr, "cocogen: unknown profile %q (caida|mawi)\n", *profile)
		return 2
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(stderr, "cocogen: %v\n", err)
		return 1
	}
	defer f.Close()
	if err := tr.WritePCAP(f, uint32(*snap)); err != nil {
		fmt.Fprintf(stderr, "cocogen: writing pcap: %v\n", err)
		return 1
	}
	counts := tr.FullCounts()
	fmt.Fprintf(stdout, "wrote %s: %d packets, %d flows (%s profile, seed %d)\n",
		*out, len(tr.Packets), len(counts), *profile, *seed)
	return 0
}
