package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cocosketch/internal/trace"
)

func TestGenerateAndReload(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.pcap")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-profile", "mawi", "-packets", "5000", "-seed", "3", "-o", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "5000 packets") {
		t.Fatalf("stdout: %s", stdout.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.FromPCAP(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) != 5000 {
		t.Fatalf("reloaded %d packets", len(tr.Packets))
	}
}

func TestBadProfile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-profile", "lan"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d", code)
	}
}

func TestBadOutputPath(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-packets", "10", "-o", "/nonexistent-dir/x.pcap"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d", code)
	}
}
