package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run go test -update after verifying the change is intended)\n--- want\n%s\n--- got\n%s",
			path, want, got)
	}
}

// TestGoldenGenerate pins both the CLI summary line and a sha256 of the
// emitted pcap bytes for each profile. The digest makes the on-disk
// format part of the contract: any change to the trace generators, the
// pcap writer, or the snaplen handling rewrites it visibly.
func TestGoldenGenerate(t *testing.T) {
	for _, profile := range []string{"caida", "mawi"} {
		t.Run(profile, func(t *testing.T) {
			dir := t.TempDir()
			out := filepath.Join(dir, "t.pcap")
			var stdout, stderr bytes.Buffer
			code := run([]string{"-profile", profile, "-packets", "5000", "-seed", "3", "-o", out}, &stdout, &stderr)
			if code != 0 {
				t.Fatalf("exit %d: %s", code, stderr.String())
			}
			blob, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			// The summary line embeds the temp path; normalize it so the
			// golden file is location-independent.
			summary := bytes.ReplaceAll(stdout.Bytes(), []byte(out), []byte("OUT"))
			record := fmt.Sprintf("%ssha256(pcap) = %x\nbytes = %d\n", summary, sha256.Sum256(blob), len(blob))
			checkGolden(t, profile+".golden", []byte(record))
		})
	}
}
