// Command cocop4gen emits the P4_16 source of the hardware-friendly
// CocoSketch for a given geometry, plus the key-word helper macros.
//
// Usage:
//
//	cocop4gen -d 2 -l 8192 -o cocosketch.p4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cocosketch/internal/rmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cocop4gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		d   = fs.Int("d", 2, "number of bucket arrays")
		l   = fs.Int("l", 8192, "buckets per array")
		out = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	src, err := rmt.GenerateP4(*d, *l)
	if err != nil {
		fmt.Fprintf(stderr, "cocop4gen: %v\n", err)
		return 1
	}
	text := rmt.GenerateP4KeyWordHelpers() + "\n" + src
	if *out == "" {
		fmt.Fprint(stdout, text)
		return 0
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fmt.Fprintf(stderr, "cocop4gen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (d=%d, l=%d)\n", *out, *d, *l)
	return 0
}
