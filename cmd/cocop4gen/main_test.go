package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStdout(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-d", "3", "-l", "64"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "val_2") || !strings.Contains(out.String(), "BUCKETS = 64") {
		t.Fatalf("output wrong:\n%s", out.String())
	}
}

func TestFileOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.p4")
	var out, errw bytes.Buffer
	if code := run([]string{"-o", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "#include <tna.p4>") {
		t.Fatal("file missing P4 content")
	}
}

func TestBadGeometry(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-d", "0"}, &out, &errw); code != 1 {
		t.Fatalf("exit %d", code)
	}
}
