package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/netwide"
)

// startCollector runs an in-process collector on a loopback port and
// returns it with its address.
func startCollector(t *testing.T, memKB, d int, seed uint64) (*netwide.Collector, string) {
	t.Helper()
	cfg := core.ConfigForMemory[flowkey.FiveTuple](d, memKB*1024, seed)
	collector := netwide.NewCollector(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() { _ = collector.Serve(l) }()
	return collector, l.Addr().String()
}

// telemetryAddr extracts the bound address from run()'s
// "telemetry: listening on ADDR" stdout line.
func telemetryAddr(t *testing.T, stdout string) string {
	t.Helper()
	for _, line := range strings.Split(stdout, "\n") {
		if addr, ok := strings.CutPrefix(line, "telemetry: listening on "); ok {
			return addr
		}
	}
	t.Fatalf("no telemetry address in output:\n%s", stdout)
	return ""
}

// fetchVars GETs /debug/vars and decodes the flat JSON document.
func fetchVars(t *testing.T, addr string) map[string]any {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	vars := map[string]any{}
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("decoding /debug/vars: %v\n%s", err, body)
	}
	return vars
}

// counter reads a counter value out of the decoded vars document.
func counter(t *testing.T, vars map[string]any, name string) uint64 {
	t.Helper()
	v, ok := vars[name].(float64)
	if !ok {
		t.Fatalf("var %q missing or not a number: %v", name, vars[name])
	}
	return uint64(v)
}

// TestRunTelemetryEndToEnd runs the agent binary in-process against a
// live collector with -telemetry enabled, then scrapes /debug/vars and
// checks the counters reflect the reported epochs. The telemetry
// listener outlives run() by design (it serves for the process
// lifetime), so the scrape happens after the agent completes.
func TestRunTelemetryEndToEnd(t *testing.T) {
	collector, addr := startCollector(t, 64, 2, 5)

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-id", "1", "-collector", addr,
		"-packets", "20000", "-epochs", "2",
		"-mem", "64", "-d", "2", "-seed", "5",
		"-telemetry", "127.0.0.1:0",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d\nstderr: %s", code, stderr.String())
	}
	if got := collector.AgentsReported(0); got != 1 {
		t.Fatalf("collector saw %d agents for epoch 0", got)
	}

	vars := fetchVars(t, telemetryAddr(t, stdout.String()))
	if got := counter(t, vars, "netwide.reports_sent"); got != 2 {
		t.Errorf("netwide.reports_sent = %d, want 2", got)
	}
	if got := counter(t, vars, "netwide.observed"); got != 40000 {
		t.Errorf("netwide.observed = %d, want 40000", got)
	}
	outcomes := counter(t, vars, "core.matched") +
		counter(t, vars, "core.replaced") + counter(t, vars, "core.kept")
	if outcomes != 40000 {
		t.Errorf("sketch outcomes sum to %d, want 40000", outcomes)
	}
}

// TestRunTelemetryShardedWorkers checks the -workers path registers the
// sharded-engine counters and that dispatch covers the whole trace.
func TestRunTelemetryShardedWorkers(t *testing.T) {
	_, addr := startCollector(t, 64, 2, 5)

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-id", "2", "-collector", addr,
		"-packets", "20000", "-epochs", "1",
		"-mem", "64", "-d", "2", "-seed", "5",
		"-workers", "2", "-telemetry", "127.0.0.1:0",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d\nstderr: %s", code, stderr.String())
	}

	vars := fetchVars(t, telemetryAddr(t, stdout.String()))
	if got := counter(t, vars, "shard.dispatched"); got != 20000 {
		t.Errorf("shard.dispatched = %d, want 20000", got)
	}
	if got := counter(t, vars, "shard.consumed"); got != 20000 {
		t.Errorf("shard.consumed = %d, want 20000 (lossless mode)", got)
	}
	// The absorbed snapshot lands in the epoch sketch as one merge.
	if got := counter(t, vars, "netwide.absorbs"); got != 1 {
		t.Errorf("netwide.absorbs = %d, want 1", got)
	}
}

// TestRunNoTelemetryFlag pins the default-off form: without -telemetry
// nothing about the run mentions a listener.
func TestRunNoTelemetryFlag(t *testing.T) {
	_, addr := startCollector(t, 64, 2, 5)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-id", "3", "-collector", addr,
		"-packets", "5000", "-mem", "64", "-d", "2", "-seed", "5",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d\nstderr: %s", code, stderr.String())
	}
	if strings.Contains(stdout.String(), "telemetry") {
		t.Fatalf("telemetry output without -telemetry:\n%s", stdout.String())
	}
}
