package main

// Error-path tests for the agent binary: usage errors, an unreachable
// collector, and the -spool hardened mode surviving (or honestly
// reporting) a mid-run outage injected by a frame-level flaky proxy.

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"

	"cocosketch/internal/netwide"
)

func TestRunBadFlagExitsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run = %d, want 2\nstderr: %s", code, stderr.String())
	}
}

func TestRunCollectorDownAtStart(t *testing.T) {
	// Bind and immediately close a listener: the port is real but
	// refuses connections, so the initial dial fails fast.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-id", "1", "-collector", addr,
		"-packets", "1000", "-mem", "64", "-d", "2", "-seed", "5",
		"-redials", "0",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "cocoagent:") {
		t.Fatalf("stderr missing failure detail:\n%s", stderr.String())
	}
}

// flakyProxy forwards whole protocol frames between the agent and the
// collector, killing the agent-facing connection just BEFORE the
// breakAfter-th sketch would be forwarded (so the collector never sees
// it and there is no delivered-but-unacked ambiguity). With heal set,
// the agent's redial gets a fresh working connection; without it the
// proxy listener closes too, so every redial is refused.
type flakyProxy struct {
	addr string
	mu   sync.Mutex
	seen int
}

func startFlakyProxy(t *testing.T, collectorAddr string, breakAfter int, heal bool) *flakyProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	p := &flakyProxy{addr: l.Addr().String()}
	go func() {
		for {
			client, err := l.Accept()
			if err != nil {
				return
			}
			upstream, err := net.Dial("tcp", collectorAddr)
			if err != nil {
				client.Close()
				continue
			}
			go p.pipe(client, upstream, breakAfter, heal, l)
		}
	}()
	return p
}

// pipe shuttles frames both ways until the injected break.
func (p *flakyProxy) pipe(client, upstream net.Conn, breakAfter int, heal bool, l net.Listener) {
	defer client.Close()
	defer upstream.Close()
	for {
		m, err := netwide.ReadMessage(client)
		if err != nil {
			return
		}
		if m.Type == netwide.MsgSketch {
			p.mu.Lock()
			n := p.seen
			p.seen++
			p.mu.Unlock()
			if n == breakAfter {
				if !heal {
					l.Close() // future redials are refused too
				}
				return // drop the frame and reset the agent's conn
			}
		}
		if err := netwide.WriteMessage(upstream, m); err != nil {
			return
		}
		ack, err := netwide.ReadMessage(upstream)
		if err != nil {
			return
		}
		if err := netwide.WriteMessage(client, ack); err != nil {
			return
		}
	}
}

// TestRunSpoolSurvivesMidRunOutage kills the connection mid-run (the
// second sketch is dropped before reaching the collector) and checks
// hardened mode redials, re-sends from the spool, and exits 0 with
// every epoch delivered.
func TestRunSpoolSurvivesMidRunOutage(t *testing.T) {
	collector, addr := startCollector(t, 64, 2, 5)
	proxy := startFlakyProxy(t, addr, 1, true)

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-id", "1", "-collector", proxy.addr,
		"-packets", "5000", "-epochs", "3",
		"-mem", "64", "-d", "2", "-seed", "5",
		"-spool", "4", "-redials", "3", "-write-timeout", "5s",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	for e := uint32(0); e < 3; e++ {
		if got := collector.AgentsReported(e); got != 1 {
			t.Errorf("epoch %d: collector saw %d agents, want 1", e, got)
		}
	}
}

// TestRunSpoolReportsUndelivered pins the honest-failure path: the
// outage never heals, so the run must exit 1 and say how many epochs
// (and how much weight) never reached the collector.
func TestRunSpoolReportsUndelivered(t *testing.T) {
	_, addr := startCollector(t, 64, 2, 5)
	proxy := startFlakyProxy(t, addr, 1, false)

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-id", "1", "-collector", proxy.addr,
		"-packets", "5000", "-epochs", "3",
		"-mem", "64", "-d", "2", "-seed", "5",
		"-spool", "4", "-redials", "1", "-write-timeout", "5s",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "epochs undelivered") {
		t.Fatalf("stderr missing undelivered summary:\n%s", stderr.String())
	}
}
