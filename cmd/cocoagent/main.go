// Command cocoagent runs one network-wide measurement vantage point:
// it measures traffic (a pcap file or a synthetic trace) into a
// CocoSketch and reports the sketch to a cococollector at the end of
// each epoch.
//
// With -workers > 1 the epoch is ingested through the sharded engine
// (internal/shard): N workers each update a private sketch behind an
// SPSC ring, and the merged snapshot is absorbed into the agent's
// epoch sketch before it is reported. Sketch memory is per worker
// (merge compatibility requires all shards to share one geometry).
//
// All agents and the collector must agree on -mem, -d and -seed.
//
// Usage:
//
//	cocoagent -id 1 -collector 127.0.0.1:7700 -pcap site1.pcap
//	cocoagent -id 2 -collector 127.0.0.1:7700 -packets 500000 -epochs 3
//	cocoagent -id 3 -collector 127.0.0.1:7700 -packets 5000000 -workers 4
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/netwide"
	"cocosketch/internal/shard"
	"cocosketch/internal/trace"
)

func main() {
	var (
		id        = flag.Uint("id", 0, "agent id (unique per vantage point)")
		collector = flag.String("collector", "127.0.0.1:7700", "collector address")
		pcapPath  = flag.String("pcap", "", "pcap file to measure (default: synthetic)")
		packets   = flag.Int("packets", 500_000, "synthetic packets per epoch when -pcap is unset")
		epochs    = flag.Int("epochs", 1, "number of epochs to report")
		memKB     = flag.Int("mem", 500, "shared sketch memory in KB")
		d         = flag.Int("d", core.DefaultArrays, "shared number of arrays")
		seed      = flag.Uint64("seed", 1, "shared sketch seed")
		workers   = flag.Int("workers", 1, "ingest workers per epoch (sharded engine when > 1)")
	)
	flag.Parse()

	cfg := core.ConfigForMemory[flowkey.FiveTuple](*d, *memKB*1024, *seed)
	agent := netwide.NewAgent(uint16(*id), cfg)

	conn, err := net.Dial("tcp", *collector)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cocoagent: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()

	for e := 0; e < *epochs; e++ {
		var tr *trace.Trace
		if *pcapPath != "" {
			f, err := os.Open(*pcapPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cocoagent: %v\n", err)
				os.Exit(1)
			}
			tr, err = trace.FromPCAP(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "cocoagent: %v\n", err)
				os.Exit(1)
			}
		} else {
			tr = trace.CAIDALike(*packets, *seed+uint64(*id)*1000+uint64(e))
		}
		if *workers > 1 {
			eng := shard.NewBasic(shard.Config{Workers: *workers, Seed: *seed}, cfg)
			eng.Ingest(tr.Packets)
			eng.Close()
			merged, err := eng.Snapshot()
			if err != nil {
				fmt.Fprintf(os.Stderr, "cocoagent: sharded ingest: %v\n", err)
				os.Exit(1)
			}
			if err := agent.Absorb(merged); err != nil {
				fmt.Fprintf(os.Stderr, "cocoagent: absorb: %v\n", err)
				os.Exit(1)
			}
		} else {
			for i := range tr.Packets {
				agent.Observe(tr.Packets[i].Key, 1)
			}
		}
		if err := agent.Report(conn); err != nil {
			fmt.Fprintf(os.Stderr, "cocoagent: report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("agent %d: epoch %d reported (%d packets)\n", *id, e, len(tr.Packets))
	}
}
