// Command cocoagent runs one network-wide measurement vantage point:
// it measures traffic (a pcap file or a synthetic trace) into a
// CocoSketch and reports the sketch to a cococollector at the end of
// each epoch.
//
// With -workers > 1 the epoch is ingested through the sharded engine
// (internal/shard): N workers each update a private sketch behind an
// SPSC ring, and the merged snapshot is absorbed into the agent's
// epoch sketch before it is reported. Sketch memory is per worker
// (merge compatibility requires all shards to share one geometry).
//
// With -telemetry the agent serves its runtime counters as expvar-style
// JSON on /debug/vars and mounts net/http/pprof under /debug/pprof/.
//
// With -spool N the agent runs hardened: each epoch is sealed into a
// bounded coalescing spool and delivery failures are survived — the
// agent keeps measuring through collector outages and flushes the
// backlog when connectivity returns (exit 1 only if epochs remain
// undelivered at the end). -write-timeout bounds each report exchange.
//
// All agents and the collector must agree on -mem, -d, -seed and
// -report-codec (the compressed codec rounds the memory-derived bucket
// count down to a multiple of report.GeometryAlign on both ends so any
// power-of-two -report-shrink divides the shared geometry).
//
// -collector may equally point at a cococollector running in -cluster
// mode: the dispatcher speaks the same report protocol and shards each
// (agent, epoch) report across its backend collectors transparently
// (DESIGN.md §15), so the agent needs no extra configuration. Use the
// full codec with a dispatcher — compressed delta reports assume one
// collector tracks the delta base, and epoch striping would force a
// base resync on nearly every report.
//
// Usage:
//
//	cocoagent -id 1 -collector 127.0.0.1:7700 -pcap site1.pcap
//	cocoagent -id 2 -collector 127.0.0.1:7700 -packets 500000 -epochs 3
//	cocoagent -id 3 -collector 127.0.0.1:7700 -packets 5000000 -workers 4 -telemetry 127.0.0.1:7701
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/netwide"
	"cocosketch/internal/report"
	"cocosketch/internal/shard"
	"cocosketch/internal/telemetry"
	"cocosketch/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// reportCodec resolves the -report-codec / -report-shrink flags into a
// report codec over the shared sketch configuration.
func reportCodec(name string, shrink int, cfg core.Config) (report.Codec[flowkey.FiveTuple], error) {
	switch name {
	case "full":
		return report.Full[flowkey.FiveTuple](flowkey.FiveTupleFromBytes), nil
	case "compressed":
		return report.Compressed[flowkey.FiveTuple](cfg, shrink, flowkey.FiveTupleFromBytes)
	default:
		return nil, fmt.Errorf("unknown -report-codec %q (want full or compressed)", name)
	}
}

// run is the testable entry point: it parses args, measures the
// configured epochs and reports them, writing progress to stdout and
// failures to stderr. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cocoagent", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id        = fs.Uint("id", 0, "agent id (unique per vantage point)")
		collector = fs.String("collector", "127.0.0.1:7700", "collector address")
		pcapPath  = fs.String("pcap", "", "pcap file to measure (default: synthetic)")
		packets   = fs.Int("packets", 500_000, "synthetic packets per epoch when -pcap is unset")
		epochs    = fs.Int("epochs", 1, "number of epochs to report")
		memKB     = fs.Int("mem", 500, "shared sketch memory in KB")
		d         = fs.Int("d", core.DefaultArrays, "shared number of arrays")
		seed      = fs.Uint64("seed", 1, "shared sketch seed")
		workers   = fs.Int("workers", 1, "ingest workers per epoch (sharded engine when > 1)")
		telAddr   = fs.String("telemetry", "", "serve /debug/vars and /debug/pprof on this address (off when empty)")
		redials   = fs.Int("redials", 2, "redial attempts per epoch report")
		spool     = fs.Int("spool", 0, "bound undelivered epochs in a coalescing spool and keep measuring through collector outages (0 = fail fast on report error)")
		writeTO   = fs.Duration("write-timeout", 0, "deadline per report exchange, so a stalled collector cannot block the agent (0 = none)")
		codecName = fs.String("report-codec", "full", "epoch report codec: full (complete snapshots, compatible default) or compressed (two-stage delta reports, DESIGN.md §14; the collector must run -report-codec=compressed too)")
		shrink    = fs.Int("report-shrink", 8, "small-stage shrink factor for -report-codec=compressed: ship 1/N of the buckets per array (power of two dividing the geometry)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	reg := telemetry.Disabled
	if *telAddr != "" {
		reg = telemetry.New()
		addr, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			fmt.Fprintf(stderr, "cocoagent: telemetry: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "telemetry: listening on %s\n", addr)
	}

	cfg := core.ConfigForMemory[flowkey.FiveTuple](*d, *memKB*1024, *seed)
	if *codecName == "compressed" {
		// Memory-derived bucket counts rarely divide by the shrink
		// factor; both ends round identically so geometries agree.
		cfg = report.AlignConfig(cfg)
	}
	agent := netwide.NewAgent(uint16(*id), cfg).SetTelemetry(reg).SetWriteTimeout(*writeTO)
	if *spool > 0 {
		agent.SetSpool(*spool, netwide.SpoolCoalesce)
	}
	codec, err := reportCodec(*codecName, *shrink, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "cocoagent: %v\n", err)
		return 2
	}
	agent.SetCodec(codec)

	dial := func() (net.Conn, error) { return net.Dial("tcp", *collector) }
	conn, err := dial()
	if err != nil {
		fmt.Fprintf(stderr, "cocoagent: %v\n", err)
		return 1
	}
	defer func() { conn.Close() }()

	for e := 0; e < *epochs; e++ {
		var tr *trace.Trace
		if *pcapPath != "" {
			f, err := os.Open(*pcapPath)
			if err != nil {
				fmt.Fprintf(stderr, "cocoagent: %v\n", err)
				return 1
			}
			tr, err = trace.FromPCAP(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(stderr, "cocoagent: %v\n", err)
				return 1
			}
		} else {
			tr = trace.CAIDALike(*packets, *seed+uint64(*id)*1000+uint64(e))
		}
		if *workers > 1 {
			eng := shard.NewBasic(shard.Config{Workers: *workers, Seed: *seed, Telemetry: reg}, cfg)
			eng.Ingest(tr.Packets)
			eng.Close()
			merged, err := eng.Snapshot()
			if err != nil {
				fmt.Fprintf(stderr, "cocoagent: sharded ingest: %v\n", err)
				return 1
			}
			if err := agent.Absorb(merged); err != nil {
				fmt.Fprintf(stderr, "cocoagent: absorb: %v\n", err)
				return 1
			}
		} else {
			for i := range tr.Packets {
				agent.Observe(tr.Packets[i].Key, 1)
			}
		}
		if *spool > 0 {
			// Hardened mode: seal the epoch (never blocks ingest) and
			// try to deliver the spool; an unreachable collector is a
			// warning, not an exit — the epochs ride along and flush
			// once connectivity returns.
			agent.EndEpoch()
			if conn, err = agent.FlushWithRedial(conn, dial, *redials); err != nil {
				fmt.Fprintf(stderr, "cocoagent: epoch %d spooled, delivery pending: %v\n", e, err)
				continue
			}
		} else if conn, err = agent.ReportWithRedial(conn, dial, *redials); err != nil {
			fmt.Fprintf(stderr, "cocoagent: report: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "agent %d: epoch %d reported (%d packets)\n", *id, e, len(tr.Packets))
	}
	if agent.PendingEpochs() > 0 {
		if conn, err = agent.FlushWithRedial(conn, dial, *redials); err != nil || agent.PendingEpochs() > 0 {
			fmt.Fprintf(stderr, "cocoagent: %d epochs undelivered (%d units of weight)\n",
				agent.PendingEpochs(), agent.PendingWeight())
			return 1
		}
	}
	return 0
}
