// Command cocobench regenerates the tables and figures of the
// CocoSketch paper's evaluation (§7). Each experiment id names one
// artifact (table2, fig8 … fig18b, ext-*); see DESIGN.md for the index.
//
// Usage:
//
//	cocobench -list
//	cocobench -run fig8,fig9 [-packets 2000000] [-seed 1] [-quick] [-bytes] [-format csv]
//	cocobench -run fig14,fig15a -json   (also writes BENCH_cocobench.json)
//	cocobench -run ext-scaling -workers 4 -json   (sharded-ingest Mpps vs workers)
//	cocobench -run ext-zeroalloc -json   (pooled zero-allocation replay vs legacy decode)
//	cocobench -run all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cocosketch/internal/experiments"
	"cocosketch/internal/telemetry"
)

// benchJSONFile is where -json writes the machine-readable throughput
// records, so the performance trajectory across PRs can be tracked by
// tooling (see README "Performance").
const benchJSONFile = "BENCH_cocobench.json"

// throughputRecord is one Mpps data point extracted from an experiment
// table. Labels carries the remaining columns of the row (algorithm,
// key count, thread count, …) as printed.
type throughputRecord struct {
	Experiment string            `json:"experiment"`
	Mpps       float64           `json:"mpps"`
	Labels     map[string]string `json:"labels,omitempty"`
}

// telemetrySummary is the runtime-counter digest attached to the
// BENCH_cocobench.json document: ring-drop totals and burst-size
// quantiles from the sharded-ingest runners (zero for experiments that
// never touch the sharded engine).
type telemetrySummary struct {
	RingDrops    uint64 `json:"ring_drops"`
	Consumed     uint64 `json:"consumed"`
	BatchSizeP50 uint64 `json:"batch_size_p50"`
	BatchSizeP99 uint64 `json:"batch_size_p99"`
}

// benchJSON is the top-level BENCH_cocobench.json document.
type benchJSON struct {
	Packets   int                `json:"packets"`
	Seed      uint64             `json:"seed"`
	Quick     bool               `json:"quick"`
	Results   []throughputRecord `json:"results"`
	Telemetry *telemetrySummary  `json:"telemetry,omitempty"`
}

// summarizeTelemetry digests a registry snapshot into the JSON fields.
func summarizeTelemetry(snap telemetry.Snapshot) *telemetrySummary {
	h := snap.Histograms["shard.batch_size"]
	return &telemetrySummary{
		RingDrops:    snap.Counters["shard.ring_drops"],
		Consumed:     snap.Counters["shard.consumed"],
		BatchSizeP50: h.Quantile(0.5),
		BatchSizeP99: h.Quantile(0.99),
	}
}

// throughputRecords pulls every row of a table that has an Mpps-like
// column (fig14's "Mpps", fig15b's "Mpps(basic)" …), one record per
// row and Mpps column. The remaining columns become labels; a
// parenthesized column suffix becomes the "series" label.
func throughputRecords(res *experiments.TableResult) []throughputRecord {
	var recs []throughputRecord
	for _, row := range res.Rows {
		labels := make(map[string]string)
		type point struct {
			mpps   float64
			series string
		}
		var points []point
		for i, col := range res.Columns {
			if i >= len(row) {
				break
			}
			if strings.HasPrefix(col, "Mpps") {
				var mpps float64
				if _, err := fmt.Sscanf(row[i], "%g", &mpps); err != nil {
					continue
				}
				series := strings.TrimSuffix(strings.TrimPrefix(col, "Mpps("), ")")
				if col == "Mpps" {
					series = ""
				}
				points = append(points, point{mpps, series})
			} else {
				labels[col] = row[i]
			}
		}
		for _, p := range points {
			rl := make(map[string]string, len(labels)+1)
			for k, v := range labels {
				rl[k] = v
			}
			if p.series != "" {
				rl["series"] = p.series
			}
			recs = append(recs, throughputRecord{Experiment: res.ID, Mpps: p.mpps, Labels: rl})
		}
	}
	return recs
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cocobench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs  = fs.String("run", "", "comma-separated experiment ids, or 'all'")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		packets = fs.Int("packets", 2_000_000, "packets per measurement window")
		seed    = fs.Uint64("seed", 1, "random seed for traces and sketches")
		quick   = fs.Bool("quick", false, "reduced sweeps and trace size")
		bytes   = fs.Bool("bytes", false, "measure byte counts instead of packet counts (fig8/fig9)")
		workers = fs.Int("workers", 0, "max worker count of the sharded-ingest sweep (ext-scaling); 0 = min(8, GOMAXPROCS)")
		format  = fs.String("format", "text", "output format: text or csv")
		jsonOut = fs.Bool("json", false, "also write throughput (Mpps) results to "+benchJSONFile)
		telAddr = fs.String("telemetry", "", "serve /debug/vars and /debug/pprof on this address while experiments run (off when empty)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// -json wants the telemetry digest even without a live endpoint.
	reg := telemetry.Disabled
	if *telAddr != "" || *jsonOut {
		reg = telemetry.New()
	}
	if *telAddr != "" {
		addr, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			fmt.Fprintf(stderr, "cocobench: telemetry: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "telemetry: listening on %s\n", addr)
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(stderr, "cocobench: unknown format %q\n", *format)
		return 2
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	if *runIDs == "" {
		fmt.Fprintln(stderr, "cocobench: use -run <ids> or -list (e.g. -run fig8)")
		return 2
	}

	ids := experiments.IDs()
	if *runIDs != "all" {
		ids = strings.Split(*runIDs, ",")
	}
	cfg := experiments.RunConfig{
		Packets: *packets, Seed: *seed, Quick: *quick, Bytes: *bytes, Workers: *workers,
		Telemetry: reg,
	}

	failed := false
	var bench benchJSON
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(stderr, "cocobench: unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		start := time.Now()
		res, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "cocobench: %s failed: %v\n", id, err)
			failed = true
			continue
		}
		if *format == "csv" {
			fmt.Fprint(stdout, res.CSV())
		} else {
			fmt.Fprintln(stdout, res.String())
			fmt.Fprintf(stdout, "(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
		if *jsonOut {
			bench.Results = append(bench.Results, throughputRecords(res)...)
		}
	}
	if *jsonOut {
		bench.Packets = *packets
		bench.Seed = *seed
		bench.Quick = *quick
		bench.Telemetry = summarizeTelemetry(reg.Snapshot())
		if bench.Results == nil {
			bench.Results = []throughputRecord{}
		}
		data, err := json.MarshalIndent(&bench, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "cocobench: encoding %s: %v\n", benchJSONFile, err)
			return 1
		}
		if err := os.WriteFile(benchJSONFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "cocobench: writing %s: %v\n", benchJSONFile, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d throughput records)\n", benchJSONFile, len(bench.Results))
	}
	if failed {
		return 1
	}
	return 0
}
