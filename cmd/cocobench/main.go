// Command cocobench regenerates the tables and figures of the
// CocoSketch paper's evaluation (§7). Each experiment id names one
// artifact (table2, fig8 … fig18b, ext-*); see DESIGN.md for the index.
//
// Usage:
//
//	cocobench -list
//	cocobench -run fig8,fig9 [-packets 2000000] [-seed 1] [-quick] [-bytes] [-format csv]
//	cocobench -run all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cocosketch/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cocobench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs  = fs.String("run", "", "comma-separated experiment ids, or 'all'")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		packets = fs.Int("packets", 2_000_000, "packets per measurement window")
		seed    = fs.Uint64("seed", 1, "random seed for traces and sketches")
		quick   = fs.Bool("quick", false, "reduced sweeps and trace size")
		bytes   = fs.Bool("bytes", false, "measure byte counts instead of packet counts (fig8/fig9)")
		format  = fs.String("format", "text", "output format: text or csv")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "csv" {
		fmt.Fprintf(stderr, "cocobench: unknown format %q\n", *format)
		return 2
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	if *runIDs == "" {
		fmt.Fprintln(stderr, "cocobench: use -run <ids> or -list (e.g. -run fig8)")
		return 2
	}

	ids := experiments.IDs()
	if *runIDs != "all" {
		ids = strings.Split(*runIDs, ",")
	}
	cfg := experiments.RunConfig{Packets: *packets, Seed: *seed, Quick: *quick, Bytes: *bytes}

	failed := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(stderr, "cocobench: unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		start := time.Now()
		res, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "cocobench: %s failed: %v\n", id, err)
			failed = true
			continue
		}
		if *format == "csv" {
			fmt.Fprint(stdout, res.CSV())
		} else {
			fmt.Fprintln(stdout, res.String())
			fmt.Fprintf(stdout, "(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}
	if failed {
		return 1
	}
	return 0
}
