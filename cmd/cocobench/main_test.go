package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	for _, id := range []string{"fig8", "table2", "ext-entropy"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunOneExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-run", "fig15b"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "fig15b") || !strings.Contains(out.String(), "Mpps(hardware)") {
		t.Fatalf("output missing table:\n%s", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-run", "table2", "-format", "csv"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if first != "resource,Count-Min,R-HHH" {
		t.Fatalf("csv header = %q", first)
	}
}

func TestRunJSON(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	var out, errw bytes.Buffer
	if code := run([]string{"-run", "fig15b", "-json"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, benchJSONFile))
	if err != nil {
		t.Fatalf("missing %s: %v", benchJSONFile, err)
	}
	var bench benchJSON
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// fig15b has 4 memory rows x 2 Mpps series (hardware, basic).
	if len(bench.Results) != 8 {
		t.Fatalf("got %d records, want 8:\n%s", len(bench.Results), data)
	}
	series := map[string]int{}
	for _, r := range bench.Results {
		if r.Experiment != "fig15b" {
			t.Errorf("record experiment = %q", r.Experiment)
		}
		if r.Mpps <= 0 {
			t.Errorf("non-positive Mpps in %+v", r)
		}
		if r.Labels["memoryMB"] == "" {
			t.Errorf("record missing memoryMB label: %+v", r)
		}
		series[r.Labels["series"]]++
	}
	if series["hardware"] != 4 || series["basic"] != 4 {
		t.Fatalf("series counts = %v, want 4 hardware + 4 basic", series)
	}
}

// TestRunJSONTelemetry checks the -json document carries the runtime
// telemetry digest: a sharded-ingest experiment must populate the
// burst-size quantiles and consumed totals (and report zero drops in
// the default lossless mode).
func TestRunJSONTelemetry(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	var out, errw bytes.Buffer
	if code := run([]string{"-run", "ext-scaling", "-quick", "-workers", "2", "-json"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, benchJSONFile))
	if err != nil {
		t.Fatalf("missing %s: %v", benchJSONFile, err)
	}
	var bench benchJSON
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if bench.Telemetry == nil {
		t.Fatalf("no telemetry block in %s:\n%s", benchJSONFile, data)
	}
	if bench.Telemetry.Consumed == 0 {
		t.Error("telemetry.consumed = 0 after a sharded-ingest sweep")
	}
	if bench.Telemetry.BatchSizeP50 == 0 || bench.Telemetry.BatchSizeP99 < bench.Telemetry.BatchSizeP50 {
		t.Errorf("burst-size quantiles implausible: p50=%d p99=%d",
			bench.Telemetry.BatchSizeP50, bench.Telemetry.BatchSizeP99)
	}
	if bench.Telemetry.RingDrops != 0 {
		t.Errorf("ring_drops = %d in lossless mode", bench.Telemetry.RingDrops)
	}
}

func TestErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{}, &out, &errw); code != 2 {
		t.Fatalf("missing -run: exit %d", code)
	}
	if code := run([]string{"-run", "nope"}, &out, &errw); code != 1 {
		t.Fatalf("unknown id: exit %d", code)
	}
	if code := run([]string{"-run", "table2", "-format", "xml"}, &out, &errw); code != 2 {
		t.Fatalf("bad format: exit %d", code)
	}
	if code := run([]string{"-bogus"}, &out, &errw); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}
