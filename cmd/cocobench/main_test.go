package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-list"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	for _, id := range []string{"fig8", "table2", "ext-entropy"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunOneExperiment(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-run", "fig15b"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "fig15b") || !strings.Contains(out.String(), "Mpps(hardware)") {
		t.Fatalf("output missing table:\n%s", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-run", "table2", "-format", "csv"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if first != "resource,Count-Min,R-HHH" {
		t.Fatalf("csv header = %q", first)
	}
}

func TestErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{}, &out, &errw); code != 2 {
		t.Fatalf("missing -run: exit %d", code)
	}
	if code := run([]string{"-run", "nope"}, &out, &errw); code != 1 {
		t.Fatalf("unknown id: exit %d", code)
	}
	if code := run([]string{"-run", "table2", "-format", "xml"}, &out, &errw); code != 2 {
		t.Fatalf("bad format: exit %d", code)
	}
	if code := run([]string{"-bogus"}, &out, &errw); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}
