// Command cococollector runs the network-wide measurement collector:
// it listens for CocoSketch reports from cocoagent processes, merges
// each epoch's shards, and periodically prints network-wide top flows
// for the requested partial keys.
//
// All agents and the collector must agree on -mem, -d and -seed (the
// shared sketch configuration that makes shards mergeable).
//
// With -telemetry the collector serves its runtime counters as
// expvar-style JSON on /debug/vars and mounts net/http/pprof under
// /debug/pprof/.
//
// Usage:
//
//	cococollector -listen 127.0.0.1:7700 -keys SrcIP,DstIP+DstPort
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/netwide"
	"cocosketch/internal/query"
	"cocosketch/internal/telemetry"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7700", "address to listen on")
		memKB   = flag.Int("mem", 500, "shared sketch memory in KB")
		d       = flag.Int("d", core.DefaultArrays, "shared number of arrays")
		seed    = flag.Uint64("seed", 1, "shared sketch seed")
		keys    = flag.String("keys", "SrcIP", "comma-separated partial keys to report")
		top     = flag.Int("top", 5, "rows per partial key")
		every   = flag.Duration("every", 5*time.Second, "reporting interval")
		oneshot = flag.Bool("oneshot", false, "print one report after the first epoch completes, then exit")
		telAddr = flag.String("telemetry", "", "serve /debug/vars and /debug/pprof on this address (off when empty)")
	)
	flag.Parse()

	reg := telemetry.Disabled
	if *telAddr != "" {
		reg = telemetry.New()
		addr, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cococollector: telemetry: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry: listening on %s\n", addr)
	}

	var masks []flowkey.Mask
	for _, expr := range strings.Split(*keys, ",") {
		m, err := flowkey.ParseMask(expr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cococollector: %v\n", err)
			os.Exit(2)
		}
		masks = append(masks, m)
	}

	cfg := core.ConfigForMemory[flowkey.FiveTuple](*d, *memKB*1024, *seed)
	collector := netwide.NewCollector(cfg).SetTelemetry(reg)
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cococollector: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("collecting on %s (mem %dKB, d=%d, seed %d)\n", l.Addr(), *memKB, *d, *seed)
	go func() {
		if err := collector.Serve(l); err != nil {
			fmt.Fprintf(os.Stderr, "cococollector: serve: %v\n", err)
			os.Exit(1)
		}
	}()

	for epoch := uint32(0); ; {
		time.Sleep(*every)
		engine, ok := collector.Epoch(epoch)
		if !ok {
			continue
		}
		fmt.Printf("\n=== epoch %d (%d agents) ===\n", epoch, collector.AgentsReported(epoch))
		for _, m := range masks {
			fmt.Print(query.FormatRows(m, engine.Top(m, *top), *top))
		}
		if *oneshot {
			return
		}
		epoch++
	}
}
