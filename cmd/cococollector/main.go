// Command cococollector runs the network-wide measurement collector:
// it listens for CocoSketch reports from cocoagent processes, merges
// each epoch's shards, and periodically prints network-wide top flows
// for the requested partial keys.
//
// All agents and the collector must agree on -mem, -d, -seed and
// -report-codec (the shared sketch configuration that makes shards
// mergeable; the compressed codec rounds the memory-derived bucket
// count down to a multiple of report.GeometryAlign on both ends).
//
// With -telemetry the collector serves its runtime counters as
// expvar-style JSON on /debug/vars and mounts net/http/pprof under
// /debug/pprof/. With -idle-timeout a connection whose agent goes
// silent is dropped instead of holding its handler goroutine forever.
//
// With -window N the collector additionally retains the last N sealed
// epochs in a sliding-window query ring (internal/window), and with
// -serve-query it serves live windowed partial-key queries as JSON:
//
//	GET /query?sql=SELECT+SrcIP,+SUM(Size)+FROM+table+GROUP+BY+SrcIP&range=last:4
//	GET /epochs
//
// With -cluster the process runs as a Maglev dispatcher instead of a
// collector: agents keep pointing their -collector flag at it, and it
// consistently shards each (agent, epoch) report across the backend
// collectors named by -peers, health-checking them on -health-interval
// and failing over transparently when one dies (DESIGN.md §15). The
// backends are ordinary cococollector processes — no extra flags;
// each holds a partial per-epoch view, and the cluster-wide decode is
// the canonical fold of their shards (internal/cluster). Codec and
// sketch-geometry flags are irrelevant to a dispatcher, which relays
// report frames without decoding them.
//
// Usage:
//
//	cococollector -listen 127.0.0.1:7700 -keys SrcIP,DstIP+DstPort
//	cococollector -cluster -listen 127.0.0.1:7700 -peers 127.0.0.1:7710,127.0.0.1:7711
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"cocosketch/internal/cluster"
	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/netwide"
	"cocosketch/internal/query"
	"cocosketch/internal/report"
	"cocosketch/internal/telemetry"
	"cocosketch/internal/window"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, serves agent
// reports and prints per-epoch summaries to stdout until the process
// is killed (or after the first complete epoch with -oneshot). It
// returns the process exit code: 2 for usage errors, 1 for runtime
// failures.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cococollector", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen    = fs.String("listen", "127.0.0.1:7700", "address to listen on")
		memKB     = fs.Int("mem", 500, "shared sketch memory in KB")
		d         = fs.Int("d", core.DefaultArrays, "shared number of arrays")
		seed      = fs.Uint64("seed", 1, "shared sketch seed")
		keys      = fs.String("keys", "SrcIP", "comma-separated partial keys to report")
		top       = fs.Int("top", 5, "rows per partial key")
		every     = fs.Duration("every", 5*time.Second, "reporting interval")
		oneshot   = fs.Bool("oneshot", false, "print one report after the first epoch completes, then exit")
		telAddr   = fs.String("telemetry", "", "serve /debug/vars and /debug/pprof on this address (off when empty)")
		idleTO    = fs.Duration("idle-timeout", 0, "drop an agent connection after this much silence, freeing its handler (0 = never)")
		codecName = fs.String("report-codec", "full", "report codec to accept: full (snapshots only, compatible default) or compressed (two-stage delta reports, DESIGN.md §14; also accepts full snapshots)")
		clusterOn = fs.Bool("cluster", false, "run as a Maglev dispatcher sharding reports across the -peers backend collectors instead of collecting locally")
		peers     = fs.String("peers", "", "comma-separated backend collector addresses (required with -cluster)")
		healthIv  = fs.Duration("health-interval", cluster.DefaultProbeInterval, "backend health-probe cadence in -cluster mode")
		windowN   = fs.Int("window", 0, "retain the last N sealed epochs in a sliding-window query ring (0 = off)")
		queryAddr = fs.String("serve-query", "", "serve the windowed JSON query endpoint (/query, /epochs) on this address (requires -window)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	reg := telemetry.Disabled
	if *telAddr != "" {
		reg = telemetry.New()
		addr, err := telemetry.Serve(*telAddr, reg)
		if err != nil {
			fmt.Fprintf(stderr, "cococollector: telemetry: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "telemetry: listening on %s\n", addr)
	}

	if *clusterOn {
		return runDispatcher(*listen, *peers, *healthIv, reg, stdout, stderr)
	}

	var masks []flowkey.Mask
	for _, expr := range strings.Split(*keys, ",") {
		m, err := flowkey.ParseMask(expr)
		if err != nil {
			fmt.Fprintf(stderr, "cococollector: %v\n", err)
			return 2
		}
		masks = append(masks, m)
	}

	cfg := core.ConfigForMemory[flowkey.FiveTuple](*d, *memKB*1024, *seed)
	if *codecName == "compressed" {
		// Same deterministic rounding cocoagent applies: memory-derived
		// bucket counts rarely divide by a shrink factor, and the two
		// ends must agree on the fat geometry.
		cfg = report.AlignConfig(cfg)
	}
	collector := netwide.NewCollector(cfg).SetTelemetry(reg).SetIdleTimeout(*idleTO)
	switch *codecName {
	case "full":
		// NewCollector's default decoder.
	case "compressed":
		// Shrink 1 here only parameterizes the unused encode side; the
		// decoder accepts any shrink factor the payload declares, as
		// long as it expands back to the shared geometry.
		codec, err := report.Compressed[flowkey.FiveTuple](cfg, 1, flowkey.FiveTupleFromBytes)
		if err != nil {
			fmt.Fprintf(stderr, "cococollector: %v\n", err)
			return 2
		}
		collector.SetCodec(codec)
	default:
		fmt.Fprintf(stderr, "cococollector: unknown -report-codec %q (want full or compressed)\n", *codecName)
		return 2
	}
	var ring *window.Ring
	if *queryAddr != "" && *windowN <= 0 {
		fmt.Fprintln(stderr, "cococollector: -serve-query requires -window N (N >= 1)")
		return 2
	}
	if *windowN > 0 {
		ring = window.NewRing(*windowN, cfg).SetTelemetry(reg)
		if *queryAddr != "" {
			addr, err := window.Serve(*queryAddr, ring)
			if err != nil {
				fmt.Fprintf(stderr, "cococollector: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "query: listening on %s\n", addr)
		}
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "cococollector: %v\n", err)
		return 1
	}
	defer l.Close()
	fmt.Fprintf(stdout, "collecting on %s (mem %dKB, d=%d, seed %d)\n", l.Addr(), *memKB, *d, *seed)
	go func() {
		if err := collector.Serve(l); err != nil {
			fmt.Fprintf(stderr, "cococollector: serve: %v\n", err)
		}
	}()

	for epoch := uint32(0); ; {
		time.Sleep(*every)
		engine, ok := collector.Epoch(epoch)
		if !ok {
			continue
		}
		fmt.Fprintf(stdout, "\n=== epoch %d (%d agents) ===\n", epoch, collector.AgentsReported(epoch))
		for _, m := range masks {
			fmt.Fprint(stdout, query.FormatRows(m, engine.Top(m, *top), *top))
		}
		if ring != nil {
			// Seal the epoch's canonical fold into the query ring: from
			// here on the epoch is visible to windowed queries and the
			// JSON endpoint.
			if err := collector.SealEpochInto(ring, epoch); err != nil {
				fmt.Fprintf(stderr, "cococollector: seal epoch %d: %v\n", epoch, err)
			}
		}
		if *oneshot {
			return 0
		}
		epoch++
	}
}

// runDispatcher is the -cluster mode: terminate agent connections on
// the listen address and shard each report across the peer collectors
// through the Maglev table, with active health checking and
// transparent failover. Blocks until the process is killed.
func runDispatcher(listen, peers string, healthIv time.Duration, reg *telemetry.Registry, stdout, stderr io.Writer) int {
	var backends []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			backends = append(backends, p)
		}
	}
	if len(backends) == 0 {
		fmt.Fprintln(stderr, "cococollector: -cluster requires -peers (comma-separated backend addresses)")
		return 2
	}
	d, err := cluster.NewDispatcher(backends)
	if err != nil {
		fmt.Fprintf(stderr, "cococollector: %v\n", err)
		return 2
	}
	d.SetTelemetry(reg).SetHealth(healthIv, cluster.DefaultDownAfter, cluster.DefaultUpAfter)
	l, err := net.Listen("tcp", listen)
	if err != nil {
		fmt.Fprintf(stderr, "cococollector: %v\n", err)
		return 1
	}
	defer l.Close()
	defer d.Close()
	fmt.Fprintf(stdout, "dispatching on %s across %d backends (%s)\n",
		l.Addr(), len(backends), strings.Join(d.Table().Backends(), ", "))
	if err := d.Serve(l); err != nil {
		fmt.Fprintf(stderr, "cococollector: dispatch: %v\n", err)
		return 1
	}
	return 0
}
