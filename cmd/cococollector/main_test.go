package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cocosketch/internal/cluster"
	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/netwide"
	"cocosketch/internal/window"
)

// syncBuffer is a mutex-guarded buffer so the test can poll run()'s
// output while run is still writing it from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitFor polls the buffer until the substring shows up (or the test
// times out after five seconds).
func waitFor(t *testing.T, buf *syncBuffer, substr string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if out := buf.String(); strings.Contains(out, substr) {
			return out
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("output never contained %q:\n%s", substr, buf.String())
	return ""
}

func TestRunBadFlagExitsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run = %d, want 2\nstderr: %s", code, stderr.String())
	}
}

func TestRunBadKeysExitsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-keys", "NotAHeaderField"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "NotAHeaderField") {
		t.Fatalf("stderr does not name the bad key:\n%s", stderr.String())
	}
}

func TestRunBadListenAddrFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-listen", "256.0.0.1:notaport"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "cococollector:") {
		t.Fatalf("stderr missing failure detail:\n%s", stderr.String())
	}
}

// TestRunClusterRequiresPeers pins the -cluster usage contract.
func TestRunClusterRequiresPeers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-cluster"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-peers") {
		t.Fatalf("stderr does not explain the missing -peers:\n%s", stderr.String())
	}
}

// TestRunClusterDispatchEndToEnd boots two in-process backend
// collectors, starts run() in -cluster mode in front of them, reports
// several epochs from an agent pointed at the dispatcher, and checks
// every report landed on exactly the backend the Maglev table routes
// it to, with the cluster-wide decode holding the full observed mass.
func TestRunClusterDispatchEndToEnd(t *testing.T) {
	cfg := core.ConfigForMemory[flowkey.FiveTuple](2, 64*1024, 5)
	backends := make([]*netwide.Collector, 2)
	addrs := make([]string, 2)
	for i := range backends {
		backends[i] = netwide.NewCollector(cfg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		addrs[i] = l.Addr().String()
		go func(i int, l net.Listener) { _ = backends[i].Serve(l) }(i, l)
	}

	stdout := &syncBuffer{}
	stderr := &syncBuffer{}
	go run([]string{
		"-cluster",
		"-listen", "127.0.0.1:0",
		"-peers", strings.Join(addrs, ","),
	}, stdout, stderr)

	out := waitFor(t, stdout, "dispatching on ")
	line := out[strings.Index(out, "dispatching on ")+len("dispatching on "):]
	dispatchAddr := strings.Fields(line)[0]

	const epochs = 4
	agent := netwide.NewAgent(3, cfg)
	conn, err := net.Dial("tcp", dispatchAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var observed uint64
	for e := 0; e < epochs; e++ {
		for i := 0; i < 2000; i++ {
			agent.Observe(flowkey.FiveTuple{SrcPort: uint16(i % 64), Proto: 6}, 1)
			observed++
		}
		if err := agent.Report(conn); err != nil {
			t.Fatal(err)
		}
	}

	table, err := cluster.NewTable(addrs, cluster.DefaultTableSize)
	if err != nil {
		t.Fatal(err)
	}
	var mass uint64
	for e := uint32(0); e < epochs; e++ {
		want, _ := table.Lookup(cluster.EpochKey(3, e))
		for i, c := range backends {
			_, held := c.EpochShards(e)
			if routed := addrs[i] == want; held != routed {
				t.Errorf("epoch %d: backend %s held=%v, want routed=%v", e, addrs[i], held, routed)
			}
		}
		eng, ok := cluster.DecodeEpoch(e, backends...)
		if !ok {
			t.Fatalf("cluster decode missing epoch %d", e)
		}
		for _, w := range eng.FullTable() {
			mass += w
		}
	}
	if mass != observed {
		t.Errorf("cluster decode mass %d != observed %d", mass, observed)
	}
}

// TestRunServeQueryRequiresWindow pins the -serve-query usage contract.
func TestRunServeQueryRequiresWindow(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-serve-query", "127.0.0.1:0"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-window") {
		t.Fatalf("stderr does not explain the missing -window:\n%s", stderr.String())
	}
}

// TestRunWindowQueryEndToEnd boots the collector with the sliding
// window and the JSON query endpoint enabled, reports two epochs from
// an in-process agent, and queries the live endpoint: /epochs must show
// both sealed epochs and /query must serve the windowed top sources
// with the full observed mass.
func TestRunWindowQueryEndToEnd(t *testing.T) {
	stdout := &syncBuffer{}
	stderr := &syncBuffer{}
	go run([]string{
		"-listen", "127.0.0.1:0",
		"-mem", "64", "-d", "2", "-seed", "5",
		"-keys", "SrcIP",
		"-every", "20ms",
		"-window", "4",
		"-serve-query", "127.0.0.1:0",
	}, stdout, stderr)

	out := waitFor(t, stdout, "query: listening on ")
	line := out[strings.Index(out, "query: listening on ")+len("query: listening on "):]
	queryAddr := strings.Fields(line)[0]
	out = waitFor(t, stdout, "collecting on ")
	line = out[strings.Index(out, "collecting on ")+len("collecting on "):]
	listenAddr := strings.Fields(line)[0]

	cfg := core.ConfigForMemory[flowkey.FiveTuple](2, 64*1024, 5)
	agent := netwide.NewAgent(1, cfg)
	conn, err := net.Dial("tcp", listenAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var observed uint64
	for e := 0; e < 2; e++ {
		for i := 0; i < 3000; i++ {
			agent.Observe(flowkey.FiveTuple{SrcIP: [4]byte{10, 0, 0, byte(i % 4)}, Proto: 6}, 1)
			observed++
		}
		if err := agent.Report(conn); err != nil {
			t.Fatal(err)
		}
	}

	// The main loop seals each epoch after printing it; poll /epochs
	// until both seals are visible to the query tier.
	var epochs window.EpochsResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + queryAddr + "/epochs")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&epochs)
			resp.Body.Close()
		}
		if err == nil && epochs.To >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query tier never saw both epochs (last: %+v, err %v)\nstderr: %s", epochs, err, stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if epochs.From != 0 || len(epochs.Epochs) != 2 {
		t.Fatalf("epochs = %+v, want [0 1] retained", epochs)
	}

	resp, err := http.Get("http://" + queryAddr + "/query?sql=SELECT+SrcIP,+SUM(Size)+FROM+table+GROUP+BY+SrcIP")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var qr window.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.From != 0 || qr.To != 2 || qr.Mask != "SrcIP" {
		t.Fatalf("query response header = %+v, want [0,2) SrcIP", qr)
	}
	var mass uint64
	for _, row := range qr.Rows {
		mass += row.Size
	}
	if mass != observed {
		t.Fatalf("windowed mass %d != observed %d (rows %+v)", mass, observed, qr.Rows)
	}
}

// TestRunOneshotEndToEnd boots the collector via run() on an ephemeral
// port, reports one epoch from an in-process agent, and checks run
// exits 0 after printing the epoch summary.
func TestRunOneshotEndToEnd(t *testing.T) {
	stdout := &syncBuffer{}
	stderr := &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-mem", "64", "-d", "2", "-seed", "5",
			"-keys", "SrcIP,DstPort",
			"-every", "20ms", "-oneshot",
			"-idle-timeout", "1m",
		}, stdout, stderr)
	}()

	out := waitFor(t, stdout, "collecting on ")
	line := out[strings.Index(out, "collecting on ")+len("collecting on "):]
	addr := strings.Fields(line)[0]

	cfg := core.ConfigForMemory[flowkey.FiveTuple](2, 64*1024, 5)
	agent := netwide.NewAgent(1, cfg)
	for i := 0; i < 5000; i++ {
		agent.Observe(flowkey.FiveTuple{SrcPort: uint16(i % 64), Proto: 6}, 1)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := agent.Report(conn); err != nil {
		t.Fatal(err)
	}

	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run = %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("oneshot run never exited")
	}
	if out := stdout.String(); !strings.Contains(out, "=== epoch 0 (1 agents) ===") {
		t.Fatalf("no epoch summary in output:\n%s", out)
	}
}
