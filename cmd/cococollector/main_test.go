package main

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/netwide"
)

// syncBuffer is a mutex-guarded buffer so the test can poll run()'s
// output while run is still writing it from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitFor polls the buffer until the substring shows up (or the test
// times out after five seconds).
func waitFor(t *testing.T, buf *syncBuffer, substr string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if out := buf.String(); strings.Contains(out, substr) {
			return out
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("output never contained %q:\n%s", substr, buf.String())
	return ""
}

func TestRunBadFlagExitsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run = %d, want 2\nstderr: %s", code, stderr.String())
	}
}

func TestRunBadKeysExitsUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-keys", "NotAHeaderField"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "NotAHeaderField") {
		t.Fatalf("stderr does not name the bad key:\n%s", stderr.String())
	}
}

func TestRunBadListenAddrFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-listen", "256.0.0.1:notaport"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "cococollector:") {
		t.Fatalf("stderr missing failure detail:\n%s", stderr.String())
	}
}

// TestRunOneshotEndToEnd boots the collector via run() on an ephemeral
// port, reports one epoch from an in-process agent, and checks run
// exits 0 after printing the epoch summary.
func TestRunOneshotEndToEnd(t *testing.T) {
	stdout := &syncBuffer{}
	stderr := &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-mem", "64", "-d", "2", "-seed", "5",
			"-keys", "SrcIP,DstPort",
			"-every", "20ms", "-oneshot",
			"-idle-timeout", "1m",
		}, stdout, stderr)
	}()

	out := waitFor(t, stdout, "collecting on ")
	line := out[strings.Index(out, "collecting on ")+len("collecting on "):]
	addr := strings.Fields(line)[0]

	cfg := core.ConfigForMemory[flowkey.FiveTuple](2, 64*1024, 5)
	agent := netwide.NewAgent(1, cfg)
	for i := 0; i < 5000; i++ {
		agent.Observe(flowkey.FiveTuple{SrcPort: uint16(i % 64), Proto: 6}, 1)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := agent.Report(conn); err != nil {
		t.Fatal(err)
	}

	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run = %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("oneshot run never exited")
	}
	if out := stdout.String(); !strings.Contains(out, "=== epoch 0 (1 agents) ===") {
		t.Fatalf("no epoch summary in output:\n%s", out)
	}
}
