package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSingleQuery(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-packets", "20000", "-mem", "200", "-q", "SrcIP", "-top", "3"},
		strings.NewReader(""), &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "full-key flows recorded") {
		t.Fatalf("missing banner:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "SrcIP") {
		t.Fatalf("missing result table:\n%s", out.String())
	}
}

func TestREPL(t *testing.T) {
	var out, errw bytes.Buffer
	stdin := strings.NewReader("DstPort\nSELECT SrcIP, SUM(Size) FROM table GROUP BY SrcIP\nbogus\nquit\n")
	code := run([]string{"-packets", "20000"}, stdin, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "dport=") {
		t.Fatalf("DstPort query missing:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "error:") {
		t.Fatalf("bogus input produced no error: %s", errw.String())
	}
}

func TestSQLQueryFlag(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-packets", "10000", "-q", "SELECT DstIP, SUM(Size) FROM table GROUP BY DstIP"},
		strings.NewReader(""), &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
}

func TestBadQuery(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-packets", "1000", "-q", "NoSuchField"},
		strings.NewReader(""), &out, &errw); code != 1 {
		t.Fatalf("exit %d", code)
	}
}

func TestMissingPcap(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-pcap", "/does/not/exist.pcap"},
		strings.NewReader(""), &out, &errw); code != 1 {
		t.Fatalf("exit %d", code)
	}
}
