// Command cocoquery demonstrates the arbitrary-partial-key workflow
// end to end: it builds one CocoSketch over a trace's 5-tuple full
// keys, then answers partial-key queries — either a single query given
// on the command line or an interactive REPL accepting the paper's SQL
// form (SELECT <key>, SUM(Size) FROM table GROUP BY <key>) or a bare
// mask expression like "SrcIP/24+DstIP".
//
// Usage:
//
//	cocoquery -pcap trace.pcap -q "SrcIP"            # one query
//	cocoquery -packets 1000000                       # synthetic + REPL
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/query"
	"cocosketch/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cocoquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		pcapPath = fs.String("pcap", "", "pcap file to measure (default: synthetic CAIDA-like)")
		packets  = fs.Int("packets", 1_000_000, "synthetic trace size when -pcap is unset")
		seed     = fs.Uint64("seed", 1, "random seed")
		memKB    = fs.Int("mem", 500, "sketch memory in KB")
		d        = fs.Int("d", core.DefaultArrays, "number of bucket arrays")
		q        = fs.String("q", "", "run one query (mask expression or SQL) and exit")
		top      = fs.Int("top", 10, "rows to print per query")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var tr *trace.Trace
	if *pcapPath != "" {
		f, err := os.Open(*pcapPath)
		if err != nil {
			fmt.Fprintf(stderr, "cocoquery: %v\n", err)
			return 1
		}
		tr, err = trace.FromPCAP(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "cocoquery: %v\n", err)
			return 1
		}
	} else {
		tr = trace.CAIDALike(*packets, *seed)
	}

	sk := core.NewBasicForMemory[flowkey.FiveTuple](*d, *memKB*1024, *seed)
	for i := range tr.Packets {
		sk.Insert(tr.Packets[i].Key, 1)
	}
	engine := query.NewEngine(sk.Decode())
	fmt.Fprintf(stdout, "measured %d packets into a %dKB CocoSketch (d=%d); %d full-key flows recorded\n",
		len(tr.Packets), *memKB, *d, len(engine.FullTable()))

	if *q != "" {
		if err := runQuery(stdout, engine, *q, *top); err != nil {
			fmt.Fprintf(stderr, "cocoquery: %v\n", err)
			return 1
		}
		return 0
	}

	fmt.Fprintln(stdout, `enter a mask ("SrcIP", "SrcIP/24+DstIP", "5-tuple") or SQL; "quit" exits`)
	sc := bufio.NewScanner(stdin)
	for {
		fmt.Fprint(stdout, "cocoquery> ")
		if !sc.Scan() {
			return 0
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return 0
		}
		if err := runQuery(stdout, engine, line, *top); err != nil {
			fmt.Fprintf(stderr, "error: %v\n", err)
		}
	}
}

func runQuery(w io.Writer, engine *query.Engine, q string, top int) error {
	var m flowkey.Mask
	var err error
	if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(q)), "SELECT") {
		m, err = query.ParseSQL(q)
	} else {
		m, err = flowkey.ParseMask(q)
	}
	if err != nil {
		return err
	}
	rows := engine.Top(m, top)
	fmt.Fprint(w, query.FormatRows(m, rows, top))
	return nil
}
