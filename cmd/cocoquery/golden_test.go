package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>; -update rewrites
// the file instead. Byte-exact comparison: the CLI output is fully
// deterministic given (-packets, -seed, -mem), so any drift in trace
// generation, sketch layout, query engine, or row formatting shows up
// here first.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run go test -update after verifying the change is intended)\n--- want\n%s\n--- got\n%s",
			path, want, got)
	}
}

// TestGoldenSingleQuery pins the complete stdout of a one-shot partial
// key query on the seeded synthetic trace.
func TestGoldenSingleQuery(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-packets", "20000", "-seed", "1", "-mem", "200", "-q", "SrcIP", "-top", "5"},
		strings.NewReader(""), &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	checkGolden(t, "single_query.golden", out.Bytes())
}

// TestGoldenSQLQuery pins the SQL front-end path (mask extracted from
// GROUP BY) including the subnet-prefix syntax.
func TestGoldenSQLQuery(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-packets", "20000", "-seed", "1", "-mem", "200", "-top", "5",
		"-q", "SELECT DstIP, SUM(Size) FROM table GROUP BY DstIP"},
		strings.NewReader(""), &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	checkGolden(t, "sql_query.golden", out.Bytes())
}

// TestGoldenREPLSession pins a full interactive session: several mask
// expressions (including a compound mask and a prefix mask), one SQL
// query, one error, and the prompt framing around each.
func TestGoldenREPLSession(t *testing.T) {
	stdin := strings.NewReader(strings.Join([]string{
		"SrcIP",
		"SrcIP/24+DstIP",
		"DstPort",
		"SELECT SrcPort, SUM(Size) FROM table GROUP BY SrcPort",
		"NoSuchField",
		"quit",
	}, "\n") + "\n")
	var out, errw bytes.Buffer
	code := run([]string{"-packets", "20000", "-seed", "1", "-mem", "200", "-top", "3"}, stdin, &out, &errw)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw.String())
	}
	combined := fmt.Sprintf("%s--- stderr ---\n%s", out.String(), errw.String())
	checkGolden(t, "repl_session.golden", []byte(combined))
}
