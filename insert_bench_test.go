package cocosketch

import (
	"testing"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/telemetry"
	"cocosketch/internal/trace"
)

// BenchmarkInsertCoco isolates the CocoSketch update cost for both
// variants (the quantity behind Figure 14's "Ours" series), one packet
// per iteration.
func BenchmarkInsertCoco(b *testing.B) {
	tr := trace.CAIDALike(1<<17, 3)
	mask := len(tr.Packets) - 1
	b.Run("basic", func(b *testing.B) {
		s := core.NewBasicForMemory[flowkey.FiveTuple](2, 500*1024, 7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Insert(tr.Packets[i&mask].Key, 1)
		}
	})
	b.Run("hardware", func(b *testing.B) {
		s := core.NewHardwareForMemory[flowkey.FiveTuple](2, 500*1024, 7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Insert(tr.Packets[i&mask].Key, 1)
		}
	})
}

// BenchmarkInsertCocoBatch measures the batched insert path (ns/op is
// still per packet). Compare against BenchmarkInsertCoco for the
// batching speedup.
func BenchmarkInsertCocoBatch(b *testing.B) {
	tr := trace.CAIDALike(1<<17, 3)
	const batch = 256
	keys := make([]flowkey.FiveTuple, len(tr.Packets))
	for i := range tr.Packets {
		keys[i] = tr.Packets[i].Key
	}
	run := func(b *testing.B, insert func([]flowkey.FiveTuple)) {
		b.ResetTimer()
		done := 0
		for done < b.N {
			off := done % len(keys)
			n := batch
			if n > b.N-done {
				n = b.N - done
			}
			if n > len(keys)-off {
				n = len(keys) - off
			}
			insert(keys[off : off+n])
			done += n
		}
	}
	b.Run("basic", func(b *testing.B) {
		s := core.NewBasicForMemory[flowkey.FiveTuple](2, 500*1024, 7)
		run(b, s.InsertBatchUnit)
	})
	b.Run("hardware", func(b *testing.B) {
		s := core.NewHardwareForMemory[flowkey.FiveTuple](2, 500*1024, 7)
		run(b, s.InsertBatchUnit)
	})
}

// BenchmarkInsertBatch compares the batched hot path with telemetry
// disabled (the nil no-op form) and enabled (a live registry). The
// overhead budget is <2% — the CI bench-smoke job gates the ratio; see
// internal/tools/benchsmoke.
func BenchmarkInsertBatch(b *testing.B) {
	tr := trace.CAIDALike(1<<17, 3)
	const batch = 256
	keys := make([]flowkey.FiveTuple, len(tr.Packets))
	for i := range tr.Packets {
		keys[i] = tr.Packets[i].Key
	}
	run := func(b *testing.B, s *core.Basic[flowkey.FiveTuple]) {
		b.ResetTimer()
		done := 0
		for done < b.N {
			off := done % len(keys)
			n := batch
			if n > b.N-done {
				n = b.N - done
			}
			if n > len(keys)-off {
				n = len(keys) - off
			}
			s.InsertBatchUnit(keys[off : off+n])
			done += n
		}
	}
	b.Run("telemetry-off", func(b *testing.B) {
		s := core.NewBasicForMemory[flowkey.FiveTuple](2, 500*1024, 7)
		s.SetTelemetry(telemetry.NewSketchMetrics(telemetry.Disabled, "core"))
		run(b, s)
	})
	b.Run("telemetry-on", func(b *testing.B) {
		s := core.NewBasicForMemory[flowkey.FiveTuple](2, 500*1024, 7)
		s.SetTelemetry(telemetry.NewSketchMetrics(telemetry.New(), "core"))
		run(b, s)
	})
}
