// OVS-style pipeline: the paper's software-switch deployment (§6/§B).
// A datapath thread parses raw Ethernet frames, hash-partitions them
// across lock-free rings, and per-thread measurement goroutines update
// CocoSketch shards — the architecture that saturated a 40G NIC with
// two threads in the paper.
//
// Run: go run ./examples/ovspipeline
package main

import (
	"fmt"

	"cocosketch/internal/flowkey"
	"cocosketch/internal/ovs"
	"cocosketch/internal/packet"
	"cocosketch/internal/query"
	"cocosketch/internal/trace"
)

func main() {
	// Build the workload as raw frames, as a NIC would deliver them.
	tr := trace.CAIDALike(300_000, 5)
	frames := make([][]byte, len(tr.Packets))
	for i := range tr.Packets {
		frames[i] = packet.Build(tr.Packets[i].Key, packet.BuildOptions{})
	}

	// The datapath's parser: frames back to keys (zero-alloc decoder).
	var dec packet.Decoder
	parsed := &trace.Trace{Name: "frames", Packets: make([]trace.Packet, 0, len(frames))}
	for _, f := range frames {
		key, err := dec.FiveTuple(f)
		if err != nil {
			continue // non-IP traffic is not measured
		}
		parsed.Packets = append(parsed.Packets, trace.Packet{Key: key, Size: uint32(len(f))})
	}
	fmt.Printf("parsed %d frames\n\n", len(parsed.Packets))

	// Sweep thread counts like Figure 15(a).
	fmt.Printf("%-8s  %-16s  %-16s\n", "threads", "Mpps(w/o Ours)", "Mpps(w/ Ours)")
	for _, threads := range []int{1, 2, 4} {
		base, _ := ovs.Run(parsed, ovs.Config{Threads: threads})
		with, decoded := ovs.Run(parsed, ovs.Config{
			Threads: threads, WithSketch: true, MemoryBytes: 500 * 1024, Seed: 9,
		})
		fmt.Printf("%-8d  %-16.2f  %-16.2f\n", threads, base.Mpps(), with.Mpps())

		if threads == 4 {
			engine := query.NewEngine(decoded)
			m := flowkey.MaskFields(flowkey.FieldSrcIP)
			fmt.Println("\ntop sources measured by the 4-thread pipeline:")
			fmt.Print(query.FormatRows(m, engine.Top(m, 5), 5))
		}
	}
}
