// Heavy change detection across measurement windows (§7.2's second
// task): two CocoSketches summarize adjacent windows; diffing their
// decoded tables — under any partial key — surfaces flows whose volume
// surged or collapsed, e.g. a flapping route or a starting attack.
//
// Run: go run ./examples/heavychange
package main

import (
	"fmt"
	"sort"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/query"
	"cocosketch/internal/tasks"
	"cocosketch/internal/trace"
)

func main() {
	// Two windows over the same flow population; ~5% of flows shift
	// rate by ≥8x between them.
	w1, w2 := trace.GeneratePair(trace.CAIDAConfig(500_000, 11), 0.05)

	measure := func(tr *trace.Trace, seed uint64) *query.Engine {
		sk := core.NewBasicForMemory[flowkey.FiveTuple](core.DefaultArrays, 500*1024, seed)
		for i := range tr.Packets {
			sk.Insert(tr.Packets[i].Key, 1)
		}
		return query.NewEngine(sk.Decode())
	}
	e1 := measure(w1, 1)
	e2 := measure(w2, 2)

	threshold := tasks.Threshold(w1.TotalPackets(), 2e-4)
	fmt.Printf("windows of %d packets each; change threshold %d packets\n\n",
		len(w1.Packets), threshold)

	// The same two sketches answer change queries for several keys.
	for _, expr := range []string{"5-tuple", "SrcIP", "DstIP/16"} {
		m, err := flowkey.ParseMask(expr)
		if err != nil {
			panic(err)
		}
		changes := tasks.HeavyChanges(e1.GroupBy(m), e2.GroupBy(m), threshold)

		type row struct {
			k flowkey.FiveTuple
			d uint64
		}
		var rows []row
		for k, d := range changes {
			rows = append(rows, row{k, d})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
		if len(rows) > 5 {
			rows = rows[:5]
		}
		fmt.Printf("top heavy changes by %s (%d total):\n", expr, len(changes))
		for _, r := range rows {
			before := e1.Query(m, r.k)
			after := e2.Query(m, r.k)
			fmt.Printf("  %-44v %8d -> %8d  (|delta| %d)\n", keyLabel(m, r.k), before, after, r.d)
		}
		fmt.Println()
	}
}

func keyLabel(m flowkey.Mask, k flowkey.FiveTuple) string {
	if m.IsFull() {
		return k.String()
	}
	if m.Bits[flowkey.FieldSrcIP] > 0 && m.Bits[flowkey.FieldDstIP] == 0 {
		return flowkey.IPv4(k.SrcIP).String()
	}
	if m.Bits[flowkey.FieldDstIP] > 0 && m.Bits[flowkey.FieldSrcIP] == 0 {
		return fmt.Sprintf("%v/%d", flowkey.IPv4(k.DstIP), m.Bits[flowkey.FieldDstIP])
	}
	return k.String()
}
