// Continuous monitoring with a sliding window: the trace is split into
// time-based measurement epochs; a core.Window keeps the last W epochs
// queryable while older state ages out — the deployment loop of a
// long-running monitor.
//
// Run: go run ./examples/sliding
package main

import (
	"fmt"
	"time"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/query"
	"cocosketch/internal/sketch"
	"cocosketch/internal/trace"
)

func main() {
	cfg := trace.CAIDAConfig(600_000, 17)
	cfg.RateMpps = 2
	tr := trace.Generate(cfg) // ≈ 300 ms of traffic

	const epoch = 50 * time.Millisecond
	windows := tr.SplitByTime(epoch)
	fmt.Printf("trace spans %v → %d epochs of %v\n\n", tr.Duration().Round(time.Millisecond),
		len(windows), epoch)

	// Keep the last 3 epochs queryable.
	win := core.NewWindow(3, core.ConfigForMemory[flowkey.FiveTuple](
		core.DefaultArrays, 200*1024, 99))

	srcMask := flowkey.MaskFields(flowkey.FieldSrcIP)
	for e, w := range windows {
		for i := range w.Packets {
			win.Insert(w.Packets[i].Key, 1)
		}
		table, err := win.Decode()
		if err != nil {
			panic(err)
		}
		engine := query.NewEngine(table)
		top := engine.Top(srcMask, 1)
		var lead sketch.Entry[flowkey.FiveTuple]
		if len(top) > 0 {
			lead = top[0]
		}
		fmt.Printf("epoch %d: window covers %7d packets; top source %v (%d)\n",
			e, sketch.TotalWeight(table), flowkey.IPv4(lead.Key.SrcIP), lead.Size)
		win.Rotate()
	}
}
