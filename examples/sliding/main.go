// Continuous monitoring with a sliding window: the trace is split into
// time-based measurement epochs; each epoch seals its own sketch into a
// window.Ring, which keeps the last W epochs queryable through the
// windowed partial-key API while older state ages out — the deployment
// loop of a long-running monitor (and exactly what cococollector
// -window runs in production).
//
// Run: go run ./examples/sliding
package main

import (
	"fmt"
	"time"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/query"
	"cocosketch/internal/trace"
	"cocosketch/internal/window"
)

func main() {
	cfg := trace.CAIDAConfig(600_000, 17)
	cfg.RateMpps = 2
	tr := trace.Generate(cfg) // ≈ 300 ms of traffic

	const epoch = 50 * time.Millisecond
	const retain = 3
	slices := tr.SplitByTime(epoch)
	fmt.Printf("trace spans %v → %d epochs of %v, ring retains %d\n\n",
		tr.Duration().Round(time.Millisecond), len(slices), epoch, retain)

	sketchCfg := core.ConfigForMemory[flowkey.FiveTuple](core.DefaultArrays, 200*1024, 99)
	ring := window.NewRing(retain, sketchCfg)

	// A standing subscription rides along: the ring tells us whenever a
	// single source exceeds a tenth of an epoch, with no polling.
	srcMask := flowkey.MaskFields(flowkey.FieldSrcIP)
	events := make(chan window.Event, 16)
	ring.Subscribe(window.Subscription{
		Kind:     window.HeavyHitter,
		Mask:     srcMask,
		Fraction: 0.10,
		Limit:    1,
	}, events)

	for e, w := range slices {
		// One fresh sketch per epoch; sealing hands it to the ring and
		// makes it queryable.
		sk := core.NewBasic[flowkey.FiveTuple](sketchCfg)
		for i := range w.Packets {
			sk.Insert(w.Packets[i].Key, 1)
		}
		if err := ring.Seal(uint64(e), sk); err != nil {
			panic(err)
		}

		// Query the whole retained window (up to the last 3 epochs) with
		// the windowed partial-key API — the merge happens inside the
		// ring, cached across repeat queries.
		rg := ring.LastN(retain)
		top, err := ring.Top(rg, srcMask, 1)
		if err != nil {
			panic(err)
		}
		var lead string
		if len(top) > 0 {
			lead = fmt.Sprintf("%s (%d)", query.RenderPartial(srcMask, top[0].Key), top[0].Size)
		}
		fmt.Printf("epoch %d: window %-6s covers %7d packets; top source %s\n",
			e, rg, windowMass(ring, rg), lead)

		// Drain any heavy-hitter events this seal fired.
		for {
			select {
			case ev := <-events:
				fmt.Printf("         event: %s %s holds ≥10%% of epoch %d\n",
					ev.Kind, query.RenderPartial(srcMask, ev.Flows[0].Key), ev.Epoch)
				continue
			default:
			}
			break
		}
	}
}

// windowMass sums the windowed table's total weight.
func windowMass(ring *window.Ring, rg window.Range) uint64 {
	eng, err := ring.Window(rg)
	if err != nil {
		panic(err)
	}
	var total uint64
	for _, v := range eng.FullTable() {
		total += v
	}
	return total
}
