// Quickstart: the minimal CocoSketch workflow.
//
//  1. Declare the full key (here the 5-tuple) and build one sketch.
//  2. Feed packets — no per-key configuration, one update per packet.
//  3. At query time, pick ANY partial key and aggregate.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/query"
	"cocosketch/internal/trace"
)

func main() {
	// One 500 KB sketch with the paper's default d=2.
	sk := core.NewBasicForMemory[flowkey.FiveTuple](core.DefaultArrays, 500*1024, 42)

	// Replay a synthetic backbone-like trace (stand-in for CAIDA).
	tr := trace.CAIDALike(500_000, 7)
	for i := range tr.Packets {
		sk.Insert(tr.Packets[i].Key, 1)
	}
	fmt.Printf("inserted %d packets; sketch holds %d buckets in %d KB\n",
		len(tr.Packets), sk.Arrays()*sk.BucketsPerArray(), sk.MemoryBytes()/1024)

	// Step 3 (control plane): decode the full-key table once...
	engine := query.NewEngine(sk.Decode())

	// ...and answer partial keys that were never configured up front.
	for _, expr := range []string{"5-tuple", "SrcIP", "SrcIP/16", "DstIP+DstPort"} {
		m, err := flowkey.ParseMask(expr)
		if err != nil {
			panic(err)
		}
		rows := engine.Top(m, 3)
		fmt.Printf("\ntop flows by %s:\n%s", expr, query.FormatRows(m, rows, 3))
	}

	// The same result via the paper's SQL form.
	rows, err := engine.SQL("SELECT SrcIP/8, SUM(Size) FROM table GROUP BY SrcIP/8")
	if err != nil {
		panic(err)
	}
	m, _ := flowkey.ParseMask("SrcIP/8")
	fmt.Printf("\nvia SQL (SrcIP/8):\n%s", query.FormatRows(m, rows, 3))
}
