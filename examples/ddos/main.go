// DDoS drill-down: the paper's motivating security scenario (§2.2).
// During an attack it is unknown in advance which key will expose the
// attackers — victim address, source prefix, port... With CocoSketch,
// ONE sketch on the 5-tuple answers all of them after the fact, and
// hierarchical heavy hitters localize the attacking prefix.
//
// The example runs in two phases. First the LIVE phase: traffic is
// sealed into the continuous query-serving ring epoch by epoch, with
// standing subscriptions (internal/window) watching every seal — the
// flood announces itself through heavy-hitter and entropy-collapse
// events the moment its first epoch seals, no polling and no
// pre-declared attack signature. Then the post-hoc drill-down runs over
// the same ring's merged window, answering the partial-key questions
// the events raised.
//
// Run: go run ./examples/ddos
package main

import (
	"fmt"
	"sort"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/packet"
	"cocosketch/internal/query"
	"cocosketch/internal/tasks"
	"cocosketch/internal/trace"
	"cocosketch/internal/window"
	"cocosketch/internal/xrand"
)

const (
	nEpochs      = 5
	epochPackets = 100_000
	floodStart   = 2 // epochs 2..4 carry the flood
	attackShare  = 3 // ~1/3 of a flood epoch is attack traffic
)

// attack synthesizes a UDP flood: a botnet inside 203.0.113.0/24 plus
// scattered /16 neighbours, all aimed at one victim port.
func attack(rng *xrand.Source) flowkey.FiveTuple {
	src := uint32(203)<<24 | 0<<16 | 113<<8 | uint32(rng.Uint64n(256))
	if rng.Uint64n(10) == 0 { // stragglers from the wider /16
		src = uint32(203)<<24 | 0<<16 | uint32(rng.Uint64n(256))<<8 | uint32(rng.Uint64n(256))
	}
	return flowkey.FiveTuple{
		SrcIP:   flowkey.IPv4FromUint32(src),
		DstIP:   [4]byte{198, 51, 100, 7}, // the victim
		SrcPort: uint16(rng.Uint64n(64512) + 1024),
		DstPort: 53,
		Proto:   packet.ProtoUDP,
	}
}

func main() {
	cfg := core.ConfigForMemory[flowkey.FiveTuple](core.DefaultArrays, 500*1024, 1)
	ring := window.NewRing(nEpochs, cfg)
	mDst := flowkey.MaskFields(flowkey.FieldDstIP)

	// Standing subscriptions: fire at each seal, before anyone thinks
	// to ask a question.
	events := make(chan window.Event, 32)
	ring.Subscribe(window.Subscription{
		Kind: window.HeavyHitter, Mask: mDst, Fraction: 0.2, Limit: 1,
	}, events)
	ring.Subscribe(window.Subscription{
		Kind: window.Entropy, Mask: mDst, MaxEntropy: 0.6, Limit: 1,
	}, events)

	// LIVE phase: benign traffic plus (from epoch 2) the flood,
	// interleaved, one sealed epoch at a time.
	background := trace.CAIDALike(nEpochs*epochPackets, 3)
	rng := xrand.New(99)
	bi := 0
	fmt.Println("live phase (heavy-hitter ≥20% of epoch, entropy ≤0.6 over DstIP):")
	for e := 0; e < nEpochs; e++ {
		sk := core.NewBasic[flowkey.FiveTuple](cfg)
		for i := 0; i < epochPackets; i++ {
			if e >= floodStart && rng.Uint64n(attackShare) == 0 {
				sk.Insert(attack(rng), 1)
			} else if bi < len(background.Packets) {
				sk.Insert(background.Packets[bi].Key, 1)
				bi++
			}
		}
		if err := ring.Seal(uint64(e), sk); err != nil {
			panic(err)
		}
		fmt.Printf("epoch %d sealed", e)
		for fired := false; ; {
			select {
			case ev := <-events:
				if !fired {
					fmt.Println()
					fired = true
				}
				switch ev.Kind {
				case window.Entropy:
					fmt.Printf("  ALERT %s: DstIP entropy collapsed to %.2f, concentrated on %s\n",
						ev.Kind, ev.Entropy, query.RenderPartial(mDst, ev.Flows[0].Key))
				default:
					fmt.Printf("  ALERT %s: %s takes ≥20%% of the epoch (%d)\n",
						ev.Kind, query.RenderPartial(mDst, ev.Flows[0].Key), ev.Flows[0].Size)
				}
				continue
			default:
			}
			if !fired {
				fmt.Println(" — quiet")
			}
			break
		}
	}

	// POST-HOC drill-down: the same ring answers every partial-key
	// question over the whole retained window — no second sketch, no
	// pre-declared keys.
	engine, err := ring.Window(window.All())
	if err != nil {
		panic(err)
	}
	var total uint64
	for _, v := range engine.FullTable() {
		total += v
	}

	// Question 1: who is being hit? (DstIP was never pre-configured.)
	fmt.Println("\nvictims by DstIP:")
	fmt.Print(query.FormatRows(mDst, engine.Top(mDst, 3), 3))

	// Question 2: which service? (DstIP, DstPort)
	mSvc := flowkey.MaskFields(flowkey.FieldDstIP, flowkey.FieldDstPort)
	fmt.Println("\nvictim services by DstIP+DstPort:")
	fmt.Print(query.FormatRows(mSvc, engine.Top(mSvc, 3), 3))

	// Question 3: where does it come from? First the direct view —
	// group sources by /24 (again, never pre-configured):
	m24 := flowkey.MaskFields(flowkey.FieldSrcIP).WithPrefix(flowkey.FieldSrcIP, 24)
	fmt.Println("\nattack sources by SrcIP/24:")
	fmt.Print(query.FormatRows(m24, engine.Top(m24, 3), 3))

	// And the hierarchical view: HHH extraction over all 33 prefix
	// lengths reports the deepest aggregates above 4% of traffic with
	// conditioned counts, localizing the botnet without guessing a
	// prefix length.
	srcCounts := query.Aggregate(engine.FullTable(),
		func(k flowkey.FiveTuple) flowkey.IPv4 { return flowkey.IPv4(k.SrcIP) })
	levels := tasks.Levels1DFromCounts(srcCounts)
	hhh := tasks.ExtractHHH1D(levels, total/25)

	type node struct {
		n tasks.Node1D
		v uint64
	}
	var nodes []node
	for n, v := range hhh {
		nodes = append(nodes, node{n, v})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].v > nodes[j].v })
	fmt.Println("\nhierarchical heavy hitters over SrcIP (conditioned counts):")
	for _, nd := range nodes {
		fmt.Printf("  %-22s %10d\n", nd.n.String(), nd.v)
	}
	fmt.Println("\nthe flood's source prefix stood out live (subscriptions) and post hoc (drill-down), with no pre-declared key")
}
