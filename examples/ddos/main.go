// DDoS drill-down: the paper's motivating security scenario (§2.2).
// During an attack it is unknown in advance which key will expose the
// attackers — victim address, source prefix, port... With CocoSketch,
// ONE sketch on the 5-tuple answers all of them after the fact, and
// hierarchical heavy hitters localize the attacking prefix.
//
// Run: go run ./examples/ddos
package main

import (
	"fmt"
	"sort"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/packet"
	"cocosketch/internal/query"
	"cocosketch/internal/tasks"
	"cocosketch/internal/trace"
	"cocosketch/internal/xrand"
)

const (
	backgroundPackets = 400_000
	attackPackets     = 100_000
)

// attack synthesizes a UDP flood: a botnet inside 203.0.113.0/24 plus
// scattered /16 neighbours, all aimed at one victim port.
func attack(rng *xrand.Source) flowkey.FiveTuple {
	src := uint32(203)<<24 | 0<<16 | 113<<8 | uint32(rng.Uint64n(256))
	if rng.Uint64n(10) == 0 { // stragglers from the wider /16
		src = uint32(203)<<24 | 0<<16 | uint32(rng.Uint64n(256))<<8 | uint32(rng.Uint64n(256))
	}
	return flowkey.FiveTuple{
		SrcIP:   flowkey.IPv4FromUint32(src),
		DstIP:   [4]byte{198, 51, 100, 7}, // the victim
		SrcPort: uint16(rng.Uint64n(64512) + 1024),
		DstPort: 53,
		Proto:   packet.ProtoUDP,
	}
}

func main() {
	sk := core.NewBasicForMemory[flowkey.FiveTuple](core.DefaultArrays, 500*1024, 1)

	// Benign traffic plus the flood, interleaved.
	background := trace.CAIDALike(backgroundPackets, 3)
	rng := xrand.New(99)
	bi := 0
	for i := 0; i < backgroundPackets+attackPackets; i++ {
		if rng.Uint64n(5) == 0 && i/5 < attackPackets { // ~20% attack volume
			sk.Insert(attack(rng), 1)
		} else if bi < len(background.Packets) {
			sk.Insert(background.Packets[bi].Key, 1)
			bi++
		}
	}

	engine := query.NewEngine(sk.Decode())
	total := uint64(backgroundPackets + attackPackets)

	// Question 1: who is being hit? (DstIP was never pre-configured.)
	mDst := flowkey.MaskFields(flowkey.FieldDstIP)
	fmt.Println("victims by DstIP:")
	fmt.Print(query.FormatRows(mDst, engine.Top(mDst, 3), 3))

	// Question 2: which service? (DstIP, DstPort)
	mSvc := flowkey.MaskFields(flowkey.FieldDstIP, flowkey.FieldDstPort)
	fmt.Println("\nvictim services by DstIP+DstPort:")
	fmt.Print(query.FormatRows(mSvc, engine.Top(mSvc, 3), 3))

	// Question 3: where does it come from? First the direct view —
	// group sources by /24 (again, never pre-configured):
	m24 := flowkey.MaskFields(flowkey.FieldSrcIP).WithPrefix(flowkey.FieldSrcIP, 24)
	fmt.Println("\nattack sources by SrcIP/24:")
	fmt.Print(query.FormatRows(m24, engine.Top(m24, 3), 3))

	// And the hierarchical view: HHH extraction over all 33 prefix
	// lengths reports the deepest aggregates above 4% of traffic with
	// conditioned counts, localizing the botnet without guessing a
	// prefix length.
	srcCounts := query.Aggregate(engine.FullTable(),
		func(k flowkey.FiveTuple) flowkey.IPv4 { return flowkey.IPv4(k.SrcIP) })
	levels := tasks.Levels1DFromCounts(srcCounts)
	hhh := tasks.ExtractHHH1D(levels, total/25)

	type node struct {
		n tasks.Node1D
		v uint64
	}
	var nodes []node
	for n, v := range hhh {
		nodes = append(nodes, node{n, v})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].v > nodes[j].v })
	fmt.Println("\nhierarchical heavy hitters over SrcIP (conditioned counts):")
	for _, nd := range nodes {
		fmt.Printf("  %-22s %10d\n", nd.n.String(), nd.v)
	}
	fmt.Println("\nthe flood's source prefix stands out without any pre-declared key")
}
