// Network-wide measurement: several vantage points (edge switches)
// each run a CocoSketch agent; a central collector merges their
// serialized sketches over TCP and answers partial-key queries about
// the WHOLE network — no key was declared anywhere in advance.
//
// Run: go run ./examples/netwide
package main

import (
	"fmt"
	"net"
	"sync"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/netwide"
	"cocosketch/internal/query"
	"cocosketch/internal/trace"
)

func main() {
	// All vantage points share one sketch configuration (required for
	// estimate-preserving merges at the collector).
	cfg := core.ConfigForMemory[flowkey.FiveTuple](core.DefaultArrays, 500*1024, 2026)

	collector := netwide.NewCollector(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer l.Close()
	go func() { _ = collector.Serve(l) }()

	// Four edge switches, each seeing its own site's traffic.
	const sites = 4
	var wg sync.WaitGroup
	wg.Add(sites)
	for site := 0; site < sites; site++ {
		go func(site int) {
			defer wg.Done()
			agent := netwide.NewAgent(uint16(site), cfg)
			tr := trace.CAIDALike(150_000, uint64(100+site))
			for i := range tr.Packets {
				agent.Observe(tr.Packets[i].Key, 1)
			}
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				panic(err)
			}
			defer conn.Close()
			if err := agent.Report(conn); err != nil {
				panic(err)
			}
			fmt.Printf("site %d reported epoch 0 (%d packets)\n", site, len(tr.Packets))
		}(site)
	}
	wg.Wait()

	engine, ok := collector.Epoch(0)
	if !ok {
		panic("epoch missing")
	}
	fmt.Printf("\ncollector merged %d sites; %d network-wide flows recorded\n\n",
		collector.AgentsReported(0), len(engine.FullTable()))

	for _, expr := range []string{"DstIP", "SrcIP/8", "DstPort"} {
		m, err := flowkey.ParseMask(expr)
		if err != nil {
			panic(err)
		}
		fmt.Printf("network-wide top by %s:\n%s\n", expr,
			query.FormatRows(m, engine.Top(m, 3), 3))
	}
}
