// Sharded multi-core ingest: the paper's OVS scaling architecture
// (§6.1 — one sketch per dataplane thread, merged at decode) packaged
// as an engine (internal/shard). A dispatcher RSS-hashes packets to N
// workers over SPSC rings; each worker batch-inserts into a private
// CocoSketch; decode merges the shards. The demo also takes a live
// snapshot mid-stream — consistent reads without stopping ingest.
//
// Run: go run ./examples/sharded
package main

import (
	"fmt"
	"time"

	"cocosketch/internal/core"
	"cocosketch/internal/flowkey"
	"cocosketch/internal/query"
	"cocosketch/internal/shard"
	"cocosketch/internal/trace"
)

func main() {
	tr := trace.CAIDALike(1_000_000, 5)
	sketchCfg := core.ConfigForMemory[flowkey.FiveTuple](core.DefaultArrays, 500<<10, 9)

	// Throughput sweep: Mpps vs worker count (needs physical cores to
	// actually climb; the correctness properties hold regardless).
	fmt.Printf("%-8s  %-10s  %-10s\n", "workers", "Mpps", "mass-ok")
	for _, workers := range []int{1, 2, 4} {
		eng := shard.NewBasic(shard.Config{Workers: workers, Seed: 5}, sketchCfg)
		start := time.Now()
		eng.Ingest(tr.Packets)
		eng.Close()
		mpps := float64(len(tr.Packets)) / time.Since(start).Seconds() / 1e6
		merged, err := eng.Snapshot()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8d  %-10.2f  %-10v\n",
			workers, mpps, merged.SumValues() == uint64(len(tr.Packets)))
	}

	// Live snapshot: ingest half the stream, read a consistent view
	// while the engine stays open, then finish and query.
	eng := shard.NewBasic(shard.Config{Workers: 4, Seed: 5}, sketchCfg)
	eng.Ingest(tr.Packets[:len(tr.Packets)/2])
	eng.Flush()
	mid, err := eng.Snapshot()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nmid-stream snapshot: %d of %d packets measured so far\n",
		mid.SumValues(), len(tr.Packets))

	eng.Ingest(tr.Packets[len(tr.Packets)/2:])
	eng.Close()
	decoded, err := eng.Decode()
	if err != nil {
		panic(err)
	}

	engine := query.NewEngine(decoded)
	m := flowkey.MaskFields(flowkey.FieldSrcIP)
	fmt.Println("\ntop sources measured by the 4-worker engine:")
	fmt.Print(query.FormatRows(m, engine.Top(m, 5), 5))
}
